//! Random Forest: CART decision trees with Gini impurity, bootstrap
//! bagging and per-split feature subsampling — the mechanisms the paper
//! describes for its RF model (§III-B).
//!
//! The training hot path is built for speed: samples live in a flat
//! [`FeatureMatrix`] accessed through zero-copy [`MatrixView`]s, each
//! tree presorts every feature **once** (so split search walks sorted
//! order with prefix counts in O(features · n) per node instead of
//! re-sorting in O(features · n log n)), and the forest fits its trees
//! in parallel. Each tree derives a private RNG stream from the master
//! seed *before* the parallel region and results are collected in tree
//! order, so the same seed yields a bit-identical forest at any thread
//! count.

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{validate_matrix, validate_training_set, Classifier, TrainError};
use crate::codec::{DecodeError, Decoder, Encoder};
use crate::matrix::{FeatureMatrix, MatrixView};
use crate::par;

const TREE_MAGIC: u32 = 0x7472_6565; // "tree"
const FOREST_MAGIC: u32 = 0x666f_7273; // "fors"

/// Hyper-parameters of a single CART tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a node needs to be split further.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// Candidate thresholds evaluated per feature.
    pub threshold_candidates: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 12, min_samples_split: 4, max_features: None, threshold_candidates: 24 }
    }
}

/// Hyper-parameters of the forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (feature subsampling defaults to √d when
    /// `max_features` is `None`).
    pub tree: TreeConfig,
    /// Bootstrap-sample the training set per tree.
    pub bootstrap: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { n_trees: 30, tree: TreeConfig::default(), bootstrap: true }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f64, left: u32, right: u32 },
}

/// A CART decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    dims: usize,
}

impl DecisionTree {
    /// Fits a tree on the view's rows restricted to `indices` (positions
    /// into the view, repeats allowed — a bootstrap bag). `y` is aligned
    /// with the view's rows.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or the view has no columns.
    pub fn fit_view(
        view: MatrixView<'_>,
        y: &[usize],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on no samples");
        let dims = view.n_cols();
        assert!(dims > 0, "cannot fit a tree on zero features");
        let n = indices.len();

        // Gather the bag into a column-major cache so split search streams
        // each feature contiguously, and presort every feature once.
        let mut columns = vec![0.0f64; dims * n];
        let mut labels = vec![0u8; n];
        for (p, &i) in indices.iter().enumerate() {
            let row = view.row(i);
            for (f, &v) in row.iter().enumerate() {
                columns[f * n + p] = v;
            }
            labels[p] = u8::from(y[i] == 1);
        }
        let sorted: Vec<Vec<u32>> = (0..dims)
            .map(|f| {
                let col = &columns[f * n..(f + 1) * n];
                let mut order: Vec<u32> = (0..n as u32).collect();
                // total_cmp gives a total order even with NaNs present
                // (they sort to the edges and are skipped by split search).
                order.sort_unstable_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
                order
            })
            .collect();

        let mut builder = TreeBuilder {
            columns: &columns,
            labels: &labels,
            n,
            dims,
            config: *config,
            nodes: Vec::new(),
            boundaries: Vec::new(),
        };
        builder.grow(sorted, 0, rng);
        DecisionTree { nodes: builder.nodes, dims }
    }

    /// Fits a tree on `(x, y)` restricted to `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, if `x` is empty, or if `x`'s rows
    /// are ragged (unequal lengths). Callers that cannot guarantee a
    /// rectangular training set should go through [`DecisionTree::fit`],
    /// which surfaces those conditions as a [`TrainError`] instead.
    pub fn fit_on(
        x: &[Vec<f64>],
        y: &[usize],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on no samples");
        let m = FeatureMatrix::from_rows(x)
            .expect("fit_on requires a non-empty, rectangular training set (see `# Panics`)");
        DecisionTree::fit_view(m.view(), y, indices, config, rng)
    }

    /// Fits a tree on the full training set.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        validate_training_set(x, y)?;
        let indices: Vec<usize> = (0..x.len()).collect();
        Ok(DecisionTree::fit_on(x, y, &indices, config, rng))
    }

    /// Predicts the class of one sample. A NaN feature value fails every
    /// `x <= threshold` test and therefore always routes right, matching
    /// how split search counts NaNs during training.
    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_counting(features).0
    }

    /// Predicts and returns the number of nodes visited on the root-to-
    /// leaf path (the tree's deterministic work unit).
    pub fn predict_counting(&self, features: &[f64]) -> (usize, u64) {
        let mut node = 0u32;
        let mut visited = 0u64;
        loop {
            visited += 1;
            match &self.nodes[node as usize] {
                Node::Leaf { class } => return (*class, visited),
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: u32) -> usize {
            match &nodes[id as usize] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    fn encode_into(&self, e: &mut Encoder) {
        e.put_u32(TREE_MAGIC);
        e.put_usize(self.dims);
        e.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { class } => {
                    e.put_u8(0);
                    e.put_usize(*class);
                }
                Node::Split { feature, threshold, left, right } => {
                    e.put_u8(1);
                    e.put_usize(*feature);
                    e.put_f64(*threshold);
                    e.put_u32(*left);
                    e.put_u32(*right);
                }
            }
        }
    }

    fn decode_from(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.expect_magic(TREE_MAGIC)?;
        let dims = d.get_usize()?;
        let count = d.get_usize()?;
        let mut nodes = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let node = match d.get_u8()? {
                0 => Node::Leaf { class: d.get_usize()? },
                1 => Node::Split {
                    feature: d.get_usize()?,
                    threshold: d.get_f64()?,
                    left: d.get_u32()?,
                    right: d.get_u32()?,
                },
                _ => return Err(DecodeError::Corrupt("node tag")),
            };
            nodes.push(node);
        }
        Ok(DecisionTree { nodes, dims })
    }
}

/// Per-tree growth state: the bag's features cached column-major plus the
/// arena under construction. Each node receives its samples as
/// per-feature *presorted* position lists; partitioning a node stably
/// splits every list, so children stay sorted without re-sorting.
struct TreeBuilder<'a> {
    /// `dims × n` feature values of the bag, column-major.
    columns: &'a [f64],
    /// Per-bag-position class labels (0/1).
    labels: &'a [u8],
    n: usize,
    dims: usize,
    config: TreeConfig,
    nodes: Vec<Node>,
    /// Reusable distinct-value boundary buffer for split search, so the
    /// hot loop performs no per-(node, feature) allocation.
    boundaries: Vec<(f64, usize, usize)>,
}

impl TreeBuilder<'_> {
    fn column(&self, feature: usize) -> &[f64] {
        &self.columns[feature * self.n..(feature + 1) * self.n]
    }

    fn grow(&mut self, sorted: Vec<Vec<u32>>, depth: usize, rng: &mut SimRng) -> u32 {
        let size = sorted[0].len();
        let positives =
            sorted[0].iter().filter(|&&p| self.labels[p as usize] == 1).count();
        let majority = usize::from(positives * 2 > size);
        let node_id = self.nodes.len() as u32;
        let pure = positives == 0 || positives == size;
        if depth >= self.config.max_depth || size < self.config.min_samples_split || pure {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        }
        let Some((feature, threshold)) = self.best_split(&sorted, positives, rng) else {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        };
        // Stable-partition every feature's sorted list by the split
        // predicate: children inherit sortedness for free. Every list
        // holds the same positions, so the left/right sizes computed on
        // the first feature pre-size the allocations for all of them.
        let split_col = self.column(feature);
        let left_n =
            sorted[0].iter().filter(|&&p| split_col[p as usize] <= threshold).count();
        let right_n = size - left_n;
        let mut left_sorted = Vec::with_capacity(self.dims);
        let mut right_sorted = Vec::with_capacity(self.dims);
        for per_feature in &sorted {
            let mut l = Vec::with_capacity(left_n);
            let mut r = Vec::with_capacity(right_n);
            for &p in per_feature {
                if split_col[p as usize] <= threshold {
                    l.push(p);
                } else {
                    r.push(p);
                }
            }
            left_sorted.push(l);
            right_sorted.push(r);
        }
        if left_sorted[0].is_empty() || right_sorted[0].is_empty() {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        }
        drop(sorted);
        // Reserve the split slot, then grow children.
        self.nodes.push(Node::Leaf { class: majority });
        let left = self.grow(left_sorted, depth + 1, rng);
        let right = self.grow(right_sorted, depth + 1, rng);
        self.nodes[node_id as usize] = Node::Split { feature, threshold, left, right };
        node_id
    }

    /// Finds the (feature, threshold) minimising weighted Gini impurity.
    /// One sweep over each feature's presorted positions yields the
    /// distinct values *and* the left-side counts of every candidate
    /// threshold via prefix sums — no per-node sorting, no per-threshold
    /// counting pass.
    fn best_split(
        &mut self,
        sorted: &[Vec<u32>],
        total_pos: usize,
        rng: &mut SimRng,
    ) -> Option<(usize, f64)> {
        let total = sorted[0].len();
        let n_features = self.config.max_features.unwrap_or(self.dims).min(self.dims);
        let mut features: Vec<usize> = (0..self.dims).collect();
        rng.shuffle(&mut features);
        features.truncate(n_features);

        let parent = gini(total_pos, total);
        let mut best: Option<(f64, usize, f64)> = None;
        for &feature in &features {
            // boundaries[c] = (distinct value, samples ≤ it, positives ≤ it).
            // NaNs are skipped: they fail `x <= t` for every t and so sit
            // on the right of every split, exactly as `predict` routes them.
            let mut boundaries = std::mem::take(&mut self.boundaries);
            boundaries.clear();
            let col = self.column(feature);
            let mut cum_n = 0usize;
            let mut cum_pos = 0usize;
            for &p in &sorted[feature] {
                let v = col[p as usize];
                if v.is_nan() {
                    continue;
                }
                cum_n += 1;
                cum_pos += usize::from(self.labels[p as usize] == 1);
                match boundaries.last_mut() {
                    Some(last) if last.0 == v => {
                        last.1 = cum_n;
                        last.2 = cum_pos;
                    }
                    _ => boundaries.push((v, cum_n, cum_pos)),
                }
            }
            if boundaries.len() < 2 {
                self.boundaries = boundaries;
                continue;
            }
            // Midpoints between consecutive distinct values are the only
            // thresholds worth trying; evenly subsample when there are
            // more than the candidate budget.
            let n_mid = boundaries.len() - 1;
            let budget = self.config.threshold_candidates.max(1);
            for slot in 0..n_mid.min(budget) {
                let c = if n_mid <= budget { slot } else { slot * (n_mid - 1) / (budget - 1).max(1) };
                let threshold = (boundaries[c].0 + boundaries[c + 1].0) / 2.0;
                if !threshold.is_finite() {
                    continue; // infinite values midpoint to ±inf or NaN
                }
                // FP rounding can land the midpoint on the upper distinct
                // value; `x <= t` then captures that group on the left too.
                let b = if threshold >= boundaries[c + 1].0 { c + 1 } else { c };
                let (_, left_n, left_pos) = boundaries[b];
                let right_n = total - left_n;
                if left_n == 0 || right_n == 0 {
                    continue;
                }
                let right_pos = total_pos - left_pos;
                let weighted = (left_n as f64 * gini(left_pos, left_n)
                    + right_n as f64 * gini(right_pos, right_n))
                    / total as f64;
                let gain = parent - weighted;
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, feature, threshold));
                }
            }
            self.boundaries = boundaries;
        }
        best.map(|(_, feature, threshold)| (feature, threshold))
    }
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// A bagged ensemble of CART trees with majority voting.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    dims: usize,
}

impl RandomForest {
    /// Trains a forest on a matrix view (zero-copy over subsets).
    ///
    /// Bootstrap bags and per-tree RNG streams are derived serially from
    /// `rng`, then the trees fit in parallel and are collected in tree
    /// order — the same seed produces a bit-identical forest no matter
    /// how many threads run.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit_view(
        view: MatrixView<'_>,
        y: &[usize],
        config: &ForestConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        let dims = validate_matrix(view, y)?;
        let mut tree_config = config.tree;
        if tree_config.max_features.is_none() {
            // The classic √d default for classification forests.
            tree_config.max_features = Some((dims as f64).sqrt().ceil() as usize);
        }
        let n = view.n_rows();
        let tasks: Vec<(Vec<usize>, SimRng)> = (0..config.n_trees.max(1))
            .map(|_| {
                let bag: Vec<usize> = if config.bootstrap {
                    (0..n).map(|_| rng.below(n as u64) as usize).collect()
                } else {
                    (0..n).collect()
                };
                (bag, rng.fork())
            })
            .collect();
        let trees = par::par_map_indexed(tasks.len(), |t| {
            let (bag, tree_rng) = &tasks[t];
            let mut tree_rng = tree_rng.clone();
            DecisionTree::fit_view(view, y, bag, &tree_config, &mut tree_rng)
        });
        Ok(RandomForest { trees, dims })
    }

    /// Trains a forest on row-of-`Vec`s data (copies once into a flat
    /// matrix, then delegates to [`RandomForest::fit_view`]).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &ForestConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        validate_training_set(x, y)?;
        // Invariant: `validate_training_set` already rejected the two
        // conditions `from_rows` can fail on (empty and ragged input),
        // so this cannot panic on any path that reaches it.
        let m = FeatureMatrix::from_rows(x)
            .expect("validate_training_set rejects empty and ragged rows");
        RandomForest::fit_view(m.view(), y, config, rng)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total nodes across all trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Decodes a forest from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(FOREST_MAGIC)?;
        let dims = d.get_usize()?;
        let count = d.get_usize()?;
        if count > 1 << 16 {
            return Err(DecodeError::Corrupt("tree count"));
        }
        let trees = (0..count).map(|_| DecisionTree::decode_from(&mut d)).collect::<Result<_, _>>()?;
        Ok(RandomForest { trees, dims })
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn predict(&self, features: &[f64]) -> usize {
        let votes: usize = self.trees.iter().map(|t| t.predict(features)).sum();
        usize::from(votes * 2 > self.trees.len())
    }

    fn predict_with_work(&self, features: &[f64]) -> (usize, u64) {
        let mut votes = 0usize;
        let mut work = 0u64;
        for tree in &self.trees {
            let (class, visited) = tree.predict_counting(features);
            votes += class;
            work += visited;
        }
        (usize::from(votes * 2 > self.trees.len()), work)
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(FOREST_MAGIC);
        e.put_usize(self.dims);
        e.put_usize(self.trees.len());
        for tree in &self.trees {
            tree.encode_into(&mut e);
        }
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        // Arena nodes dominate: tag + feature + threshold + child ids.
        (self.total_nodes() * std::mem::size_of::<Node>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::gather;

    /// Two Gaussian-ish blobs separable on feature 0.
    fn blobs(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            x.push(vec![center + rng.standard_normal(), rng.standard_normal()]);
            y.push(class);
        }
        (x, y)
    }

    /// XOR-ish data: not linearly separable, needs depth >= 2.
    fn xor(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.uniform() > 0.5;
            let b = rng.uniform() > 0.5;
            let ja = rng.uniform_range(-0.3, 0.3);
            let jb = rng.uniform_range(-0.3, 0.3);
            x.push(vec![f64::from(a) + ja, f64::from(b) + jb]);
            y.push(usize::from(a ^ b));
        }
        (x, y)
    }

    #[test]
    fn tree_separates_blobs() {
        let mut rng = SimRng::seed_from(1);
        let (x, y) = blobs(400, &mut rng);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "train acc {correct}/400");
    }

    #[test]
    fn forest_learns_xor() {
        let mut rng = SimRng::seed_from(2);
        let (x, y) = xor(600, &mut rng);
        let (xt, yt) = xor(200, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let correct = xt.iter().zip(&yt).filter(|(xi, &yi)| forest.predict(xi) == yi).count();
        assert!(correct as f64 / xt.len() as f64 > 0.9, "test acc {correct}/200");
    }

    #[test]
    fn forest_beats_single_majority_baseline() {
        let mut rng = SimRng::seed_from(3);
        let (x, y) = blobs(300, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let acc = x.iter().zip(&y).filter(|(xi, &yi)| forest.predict(xi) == yi).count() as f64
            / x.len() as f64;
        assert!(acc > 0.5 + 0.2, "forest accuracy {acc}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut rng = SimRng::seed_from(4);
        let (x, y) = xor(300, &mut rng);
        let config = TreeConfig { max_depth: 3, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&x, &y, &config, &mut rng).unwrap();
        assert!(tree.depth() <= 4, "depth {} (root at depth 1)", tree.depth());
    }

    #[test]
    fn codec_roundtrip_preserves_predictions() {
        let mut rng = SimRng::seed_from(5);
        let (x, y) = blobs(200, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 7, ..Default::default() }, &mut rng)
            .unwrap();
        let blob = forest.encode();
        let back = RandomForest::decode(&blob).unwrap();
        assert_eq!(back.n_trees(), 7);
        for xi in &x {
            assert_eq!(forest.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn training_rejects_single_class() {
        let mut rng = SimRng::seed_from(6);
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![0, 0];
        assert_eq!(
            RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng),
            Err(TrainError::SingleClass)
        );
    }

    #[test]
    fn model_size_grows_with_trees() {
        let mut rng = SimRng::seed_from(7);
        let (x, y) = blobs(200, &mut rng);
        let small =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 3, ..Default::default() }, &mut rng)
                .unwrap();
        let large =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 30, ..Default::default() }, &mut rng)
                .unwrap();
        assert!(large.encode().len() > small.encode().len());
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = SimRng::seed_from(8);
            let (x, y) = blobs(150, &mut rng);
            RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap().encode()
        };
        assert_eq!(build(), build());
    }

    /// Regression test for the historical NaN panic: split search used
    /// `partial_cmp(..).expect("finite features")`, so a single NaN cell
    /// aborted training. NaNs now sort via `total_cmp`, are excluded
    /// from candidate thresholds, and route right at predict time.
    #[test]
    fn nan_features_train_without_panicking() {
        let mut rng = SimRng::seed_from(9);
        let (mut x, y) = blobs(120, &mut rng);
        for i in (0..x.len()).step_by(7) {
            x[i][1] = f64::NAN;
        }
        let forest = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 5, ..Default::default() }, &mut rng)
            .unwrap();
        // Clean rows still classify well — blobs separate on feature 0.
        let clean: Vec<usize> = (0..x.len()).filter(|i| i % 7 != 0).collect();
        let correct =
            clean.iter().filter(|&&i| forest.predict(&x[i]) == y[i]).count();
        assert!(correct as f64 / clean.len() as f64 > 0.9);
        // A NaN probe routes to *some* leaf rather than panicking.
        let _ = forest.predict(&[f64::NAN, f64::NAN]);
    }

    /// The zero-copy subset path must behave exactly like materialising
    /// the subset rows and training on the copy.
    #[test]
    fn subset_view_training_matches_materialized_copy() {
        let mut rng = SimRng::seed_from(10);
        let (x, y) = blobs(200, &mut rng);
        let subset: Vec<usize> = (0..x.len()).filter(|i| i % 3 != 0).collect();
        let m = FeatureMatrix::from_rows(&x).unwrap();
        let ys = gather(&y, &subset);

        let mut rng_a = SimRng::seed_from(11);
        let via_view =
            RandomForest::fit_view(m.subset(&subset), &ys, &ForestConfig::default(), &mut rng_a)
                .unwrap();
        let rows: Vec<Vec<f64>> = subset.iter().map(|&i| x[i].clone()).collect();
        let mut rng_b = SimRng::seed_from(11);
        let via_copy = RandomForest::fit(&rows, &ys, &ForestConfig::default(), &mut rng_b).unwrap();
        assert_eq!(via_view.encode(), via_copy.encode());
    }

    /// The profiling hook agrees with `predict` and reports the nodes
    /// visited — at least one per tree (the root), at most the forest.
    #[test]
    fn predict_with_work_counts_visited_nodes() {
        let mut rng = SimRng::seed_from(13);
        let (x, y) = blobs(200, &mut rng);
        let forest =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 5, ..Default::default() }, &mut rng)
                .unwrap();
        for xi in x.iter().take(20) {
            let (class, work) = forest.predict_with_work(xi);
            assert_eq!(class, forest.predict(xi));
            assert!(work >= forest.n_trees() as u64, "work {work}");
            assert!(work <= forest.total_nodes() as u64, "work {work}");
        }
    }

    /// Same seed ⇒ bit-identical forest at any thread budget.
    #[test]
    fn training_is_thread_count_invariant() {
        let build = |threads: usize| {
            par::with_threads(threads, || {
                let mut rng = SimRng::seed_from(12);
                let (x, y) = xor(200, &mut rng);
                RandomForest::fit(&x, &y, &ForestConfig { n_trees: 8, ..Default::default() }, &mut rng)
                    .unwrap()
                    .encode()
            })
        };
        assert_eq!(build(1), build(4));
    }
}
