//! Random Forest: CART decision trees with Gini impurity, bootstrap
//! bagging and per-split feature subsampling — the mechanisms the paper
//! describes for its RF model (§III-B).
//!
//! The training hot path is built for speed: samples live in a flat
//! [`FeatureMatrix`] accessed through zero-copy [`MatrixView`]s, each
//! tree presorts every feature **once** (so split search walks sorted
//! order with prefix counts in O(features · n) per node instead of
//! re-sorting in O(features · n log n)), and the forest fits its trees
//! in parallel. Each tree derives a private RNG stream from the master
//! seed *before* the parallel region and results are collected in tree
//! order, so the same seed yields a bit-identical forest at any thread
//! count.

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{validate_matrix, validate_training_set, Classifier, RowSpan, TrainError};
use crate::codec::{DecodeError, Decoder, Encoder};
use crate::matrix::{FeatureMatrix, MatrixView};
use crate::par;

const TREE_MAGIC: u32 = 0x7472_6565; // "tree"
const FOREST_MAGIC: u32 = 0x666f_7273; // "fors"

/// Marks a leaf in the structure-of-arrays node pool's `feature` lane.
const LEAF_SENTINEL: u32 = u32::MAX;

/// Rows per parallel block in batch prediction. A fixed constant (never
/// derived from the thread count) keeps the work split — and therefore
/// the result concatenation order — identical on every machine.
const BATCH_ROWS: usize = 64;

/// Rows walked in lockstep per tree inside a block. Small enough that
/// the lane cursors live in registers, wide enough to overlap one
/// lane's node loads with its neighbours'.
const PREDICT_LANES: usize = 8;

/// Hyper-parameters of a single CART tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a node needs to be split further.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// Candidate thresholds evaluated per feature.
    pub threshold_candidates: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 12, min_samples_split: 4, max_features: None, threshold_candidates: 24 }
    }
}

/// Hyper-parameters of the forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (feature subsampling defaults to √d when
    /// `max_features` is `None`).
    pub tree: TreeConfig,
    /// Bootstrap-sample the training set per tree.
    pub bootstrap: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { n_trees: 30, tree: TreeConfig::default(), bootstrap: true }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f64, left: u32, right: u32 },
}

/// A CART decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    dims: usize,
}

impl DecisionTree {
    /// Fits a tree on the view's rows restricted to `indices` (positions
    /// into the view, repeats allowed — a bootstrap bag). `y` is aligned
    /// with the view's rows.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or the view has no columns.
    pub fn fit_view(
        view: MatrixView<'_>,
        y: &[usize],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on no samples");
        let dims = view.n_cols();
        assert!(dims > 0, "cannot fit a tree on zero features");
        let n = indices.len();

        // Gather the bag into a column-major cache so split search streams
        // each feature contiguously, and presort every feature once.
        let mut columns = vec![0.0f64; dims * n];
        let mut labels = vec![0u8; n];
        for (p, &i) in indices.iter().enumerate() {
            let row = view.row(i);
            for (f, &v) in row.iter().enumerate() {
                columns[f * n + p] = v;
            }
            labels[p] = u8::from(y[i] == 1);
        }
        let sorted: Vec<Vec<u32>> = (0..dims)
            .map(|f| {
                let col = &columns[f * n..(f + 1) * n];
                let mut order: Vec<u32> = (0..n as u32).collect();
                // total_cmp gives a total order even with NaNs present
                // (they sort to the edges and are skipped by split search).
                order.sort_unstable_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
                order
            })
            .collect();

        let mut builder = TreeBuilder {
            columns: &columns,
            labels: &labels,
            n,
            dims,
            config: *config,
            nodes: Vec::new(),
            boundaries: Vec::new(),
        };
        builder.grow(sorted, 0, rng);
        DecisionTree { nodes: builder.nodes, dims }
    }

    /// Fits a tree on `(x, y)` restricted to `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, if `x` is empty, or if `x`'s rows
    /// are ragged (unequal lengths). Callers that cannot guarantee a
    /// rectangular training set should go through [`DecisionTree::fit`],
    /// which surfaces those conditions as a [`TrainError`] instead.
    pub fn fit_on(
        x: &[Vec<f64>],
        y: &[usize],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on no samples");
        let m = FeatureMatrix::from_rows(x)
            .expect("fit_on requires a non-empty, rectangular training set (see `# Panics`)");
        DecisionTree::fit_view(m.view(), y, indices, config, rng)
    }

    /// Fits a tree on the full training set.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        validate_training_set(x, y)?;
        let indices: Vec<usize> = (0..x.len()).collect();
        Ok(DecisionTree::fit_on(x, y, &indices, config, rng))
    }

    /// Predicts the class of one sample. A NaN feature value fails every
    /// `x <= threshold` test and therefore always routes right, matching
    /// how split search counts NaNs during training.
    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_counting(features).0
    }

    /// Predicts and returns the number of nodes visited on the root-to-
    /// leaf path (the tree's deterministic work unit).
    pub fn predict_counting(&self, features: &[f64]) -> (usize, u64) {
        let mut node = 0u32;
        let mut visited = 0u64;
        loop {
            visited += 1;
            match &self.nodes[node as usize] {
                Node::Leaf { class } => return (*class, visited),
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: u32) -> usize {
            match &nodes[id as usize] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    fn encode_into(&self, e: &mut Encoder) {
        e.put_u32(TREE_MAGIC);
        e.put_usize(self.dims);
        e.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { class } => {
                    e.put_u8(0);
                    e.put_usize(*class);
                }
                Node::Split { feature, threshold, left, right } => {
                    e.put_u8(1);
                    e.put_usize(*feature);
                    e.put_f64(*threshold);
                    e.put_u32(*left);
                    e.put_u32(*right);
                }
            }
        }
    }

    fn decode_from(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.expect_magic(TREE_MAGIC)?;
        let dims = d.get_usize()?;
        let count = d.get_usize()?;
        let mut nodes = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let node = match d.get_u8()? {
                0 => Node::Leaf { class: d.get_usize()? },
                1 => Node::Split {
                    feature: d.get_usize()?,
                    threshold: d.get_f64()?,
                    left: d.get_u32()?,
                    right: d.get_u32()?,
                },
                _ => return Err(DecodeError::Corrupt("node tag")),
            };
            nodes.push(node);
        }
        Ok(DecisionTree { nodes, dims })
    }
}

/// Per-tree growth state: the bag's features cached column-major plus the
/// arena under construction. Each node receives its samples as
/// per-feature *presorted* position lists; partitioning a node stably
/// splits every list, so children stay sorted without re-sorting.
struct TreeBuilder<'a> {
    /// `dims × n` feature values of the bag, column-major.
    columns: &'a [f64],
    /// Per-bag-position class labels (0/1).
    labels: &'a [u8],
    n: usize,
    dims: usize,
    config: TreeConfig,
    nodes: Vec<Node>,
    /// Reusable distinct-value boundary buffer for split search, so the
    /// hot loop performs no per-(node, feature) allocation.
    boundaries: Vec<(f64, usize, usize)>,
}

impl TreeBuilder<'_> {
    fn column(&self, feature: usize) -> &[f64] {
        &self.columns[feature * self.n..(feature + 1) * self.n]
    }

    fn grow(&mut self, sorted: Vec<Vec<u32>>, depth: usize, rng: &mut SimRng) -> u32 {
        let size = sorted[0].len();
        let positives =
            sorted[0].iter().filter(|&&p| self.labels[p as usize] == 1).count();
        let majority = usize::from(positives * 2 > size);
        let node_id = self.nodes.len() as u32;
        let pure = positives == 0 || positives == size;
        if depth >= self.config.max_depth || size < self.config.min_samples_split || pure {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        }
        let Some((feature, threshold)) = self.best_split(&sorted, positives, rng) else {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        };
        // Stable-partition every feature's sorted list by the split
        // predicate: children inherit sortedness for free. Every list
        // holds the same positions, so the left/right sizes computed on
        // the first feature pre-size the allocations for all of them.
        let split_col = self.column(feature);
        let left_n =
            sorted[0].iter().filter(|&&p| split_col[p as usize] <= threshold).count();
        let right_n = size - left_n;
        let mut left_sorted = Vec::with_capacity(self.dims);
        let mut right_sorted = Vec::with_capacity(self.dims);
        for per_feature in &sorted {
            let mut l = Vec::with_capacity(left_n);
            let mut r = Vec::with_capacity(right_n);
            for &p in per_feature {
                if split_col[p as usize] <= threshold {
                    l.push(p);
                } else {
                    r.push(p);
                }
            }
            left_sorted.push(l);
            right_sorted.push(r);
        }
        if left_sorted[0].is_empty() || right_sorted[0].is_empty() {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        }
        drop(sorted);
        // Reserve the split slot, then grow children.
        self.nodes.push(Node::Leaf { class: majority });
        let left = self.grow(left_sorted, depth + 1, rng);
        let right = self.grow(right_sorted, depth + 1, rng);
        self.nodes[node_id as usize] = Node::Split { feature, threshold, left, right };
        node_id
    }

    /// Finds the (feature, threshold) minimising weighted Gini impurity.
    /// One sweep over each feature's presorted positions yields the
    /// distinct values *and* the left-side counts of every candidate
    /// threshold via prefix sums — no per-node sorting, no per-threshold
    /// counting pass.
    fn best_split(
        &mut self,
        sorted: &[Vec<u32>],
        total_pos: usize,
        rng: &mut SimRng,
    ) -> Option<(usize, f64)> {
        let total = sorted[0].len();
        let n_features = self.config.max_features.unwrap_or(self.dims).min(self.dims);
        let mut features: Vec<usize> = (0..self.dims).collect();
        rng.shuffle(&mut features);
        features.truncate(n_features);

        let parent = gini(total_pos, total);
        let mut best: Option<(f64, usize, f64)> = None;
        for &feature in &features {
            // boundaries[c] = (distinct value, samples ≤ it, positives ≤ it).
            // NaNs are skipped: they fail `x <= t` for every t and so sit
            // on the right of every split, exactly as `predict` routes them.
            let mut boundaries = std::mem::take(&mut self.boundaries);
            boundaries.clear();
            let col = self.column(feature);
            let mut cum_n = 0usize;
            let mut cum_pos = 0usize;
            for &p in &sorted[feature] {
                let v = col[p as usize];
                if v.is_nan() {
                    continue;
                }
                cum_n += 1;
                cum_pos += usize::from(self.labels[p as usize] == 1);
                match boundaries.last_mut() {
                    Some(last) if last.0 == v => {
                        last.1 = cum_n;
                        last.2 = cum_pos;
                    }
                    _ => boundaries.push((v, cum_n, cum_pos)),
                }
            }
            if boundaries.len() < 2 {
                self.boundaries = boundaries;
                continue;
            }
            // Midpoints between consecutive distinct values are the only
            // thresholds worth trying; evenly subsample when there are
            // more than the candidate budget.
            let n_mid = boundaries.len() - 1;
            let budget = self.config.threshold_candidates.max(1);
            for slot in 0..n_mid.min(budget) {
                let c = if n_mid <= budget { slot } else { slot * (n_mid - 1) / (budget - 1).max(1) };
                let threshold = (boundaries[c].0 + boundaries[c + 1].0) / 2.0;
                if !threshold.is_finite() {
                    continue; // infinite values midpoint to ±inf or NaN
                }
                // FP rounding can land the midpoint on the upper distinct
                // value; `x <= t` then captures that group on the left too.
                let b = if threshold >= boundaries[c + 1].0 { c + 1 } else { c };
                let (_, left_n, left_pos) = boundaries[b];
                let right_n = total - left_n;
                if left_n == 0 || right_n == 0 {
                    continue;
                }
                let right_pos = total_pos - left_pos;
                let weighted = (left_n as f64 * gini(left_pos, left_n)
                    + right_n as f64 * gini(right_pos, right_n))
                    / total as f64;
                let gain = parent - weighted;
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, feature, threshold));
                }
            }
            self.boundaries = boundaries;
        }
        best.map(|(_, feature, threshold)| (feature, threshold))
    }
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// Every tree of the forest lowered into one flat structure-of-arrays
/// node pool: parallel lanes indexed by absolute node id, plus the root
/// id and max depth of each tree. Splits keep their children as
/// absolute indices so a walk never touches a per-tree base offset.
/// Leaves are *self-looping*: their `left`/`right` point back at the
/// leaf itself and their `step_feature` is `0`, so the lockstep batch
/// walker advances every lane with the same load/compare/select step —
/// no leaf test, no data-dependent branch — and lanes that finish early
/// simply park on their leaf. The leaf's class and its distance from
/// the root live in dedicated `class_of`/`depth_of` lanes, which also
/// moves work accounting out of the hot loop: a row's visited-node
/// count is exactly `depth_of[leaf]`.
///
/// The lanes are contiguous (`u32`/`f64` slices), so batch prediction
/// streams the whole ensemble through cache instead of chasing
/// `Vec<Node>` pointers tree by tree.
///
/// The pool is derived from the trees at construction time and never
/// serialized — [`RandomForest::decode`] rebuilds it.
#[derive(Debug, Clone, PartialEq, Default)]
struct NodePool {
    /// Split feature per node; [`LEAF_SENTINEL`] marks a leaf.
    feature: Vec<u32>,
    /// Split feature again, but `0` (a valid column) for leaves — the
    /// branch-free lane the lockstep walker indexes rows with.
    step_feature: Vec<u32>,
    /// Split threshold per node (`0.0` for leaves).
    threshold: Vec<f64>,
    /// Absolute left-child id per node; leaves point at themselves.
    left: Vec<u32>,
    /// Absolute right-child id per node; leaves point at themselves.
    right: Vec<u32>,
    /// Leaf class (0/1) per node; `0` for splits.
    class_of: Vec<u32>,
    /// Nodes on the root-to-here path, inclusive — a leaf's entry is
    /// the exact visited-node count of any walk ending there.
    depth_of: Vec<u32>,
    /// Absolute root id of each tree.
    roots: Vec<u32>,
    /// Maximum depth of each tree (nodes on the longest root-to-leaf
    /// path) — the lockstep batch walker's iteration bound.
    depths: Vec<u32>,
}

impl NodePool {
    fn from_trees(trees: &[DecisionTree]) -> Self {
        let total = trees.iter().map(|t| t.nodes.len()).sum();
        let mut pool = NodePool {
            feature: Vec::with_capacity(total),
            step_feature: Vec::with_capacity(total),
            threshold: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            right: Vec::with_capacity(total),
            class_of: Vec::with_capacity(total),
            depth_of: Vec::with_capacity(total),
            roots: Vec::with_capacity(trees.len()),
            depths: Vec::with_capacity(trees.len()),
        };
        for tree in trees {
            let base = pool.feature.len() as u32;
            pool.roots.push(base);
            pool.depths.push(tree.depth() as u32);
            for (id, node) in tree.nodes.iter().enumerate() {
                let abs = base + id as u32;
                match node {
                    Node::Leaf { class } => {
                        pool.feature.push(LEAF_SENTINEL);
                        pool.step_feature.push(0);
                        pool.threshold.push(0.0);
                        pool.left.push(abs);
                        pool.right.push(abs);
                        pool.class_of.push(*class as u32);
                    }
                    Node::Split { feature, threshold, left, right } => {
                        pool.feature.push(*feature as u32);
                        pool.step_feature.push(*feature as u32);
                        pool.threshold.push(*threshold);
                        pool.left.push(base + *left);
                        pool.right.push(base + *right);
                        pool.class_of.push(0);
                    }
                }
            }
            // Per-node path depths, root = 1. Children may precede their
            // parent in `nodes`, so walk explicitly instead of assuming
            // a topological order.
            let n = tree.nodes.len();
            let mut stack = vec![(0u32, 1u32)];
            let mut depth_rel = vec![0u32; n];
            if n == 0 {
                stack.clear();
            }
            while let Some((id, d)) = stack.pop() {
                depth_rel[id as usize] = d;
                if let Node::Split { left, right, .. } = &tree.nodes[id as usize] {
                    stack.push((*left, d + 1));
                    stack.push((*right, d + 1));
                }
            }
            pool.depth_of.extend_from_slice(&depth_rel);
        }
        pool
    }

    /// Walks one tree root-to-leaf, returning the leaf class and the
    /// number of nodes visited — the same count, node for node, as the
    /// reference [`DecisionTree::predict_counting`], because the pool is
    /// a pure re-layout of the same topology.
    #[inline]
    fn walk(&self, root: u32, features: &[f64]) -> (u32, u64) {
        let mut idx = root as usize;
        let mut visited = 0u64;
        loop {
            visited += 1;
            let f = self.feature[idx];
            if f == LEAF_SENTINEL {
                return (self.class_of[idx], visited);
            }
            let l = self.left[idx];
            let r = self.right[idx];
            // Branchless child select: `<=` is false for NaN, so NaN
            // features route right exactly like the reference walker.
            idx = if features[f as usize] <= self.threshold[idx] { l } else { r } as usize;
        }
    }

    /// Majority vote over all trees for one row, plus visited-node work.
    fn predict_with_work(&self, features: &[f64]) -> (usize, u64) {
        let mut votes = 0usize;
        let mut work = 0u64;
        for &root in &self.roots {
            let (class, visited) = self.walk(root, features);
            votes += class as usize;
            work += visited;
        }
        (usize::from(votes * 2 > self.roots.len()), work)
    }

    /// Accumulates per-row votes for a block of at most [`BATCH_ROWS`]
    /// rows, walking every tree over all rows in lockstep: each pass of
    /// the inner loop advances every row by one level, so the
    /// dependent-load chain of a single root-to-leaf walk is hidden
    /// behind the independent loads of its 63 neighbours. The pass count
    /// is the tree's precomputed max depth and rows that reach a leaf
    /// early self-loop there via the same select as the child step —
    /// the body has no data-dependent branches at all.
    ///
    /// `votes` is overwritten; `work` accrues the same visited-node
    /// count, node for node, as the one-row [`Self::walk`]: each row
    /// pays `depth_of` of the leaf it lands on — its exact path length.
    fn predict_block(&self, rows: &[&[f64]], votes: &mut [u32], work: &mut u64) {
        let m = rows.len();
        debug_assert!(m <= BATCH_ROWS && votes.len() == m);
        votes.fill(0);
        let mut w = 0u64;
        for (&root, &depth) in self.roots.iter().zip(&self.depths) {
            let mut i = 0;
            while i + PREDICT_LANES <= m {
                let group: [&[f64]; PREDICT_LANES] =
                    rows[i..i + PREDICT_LANES].try_into().expect("group width");
                let leaves = self.walk_group(&group, root, depth);
                for &leaf in &leaves {
                    debug_assert_eq!(self.feature[leaf as usize], LEAF_SENTINEL);
                    w += u64::from(self.depth_of[leaf as usize]);
                }
                for lane in 0..PREDICT_LANES {
                    votes[i + lane] += self.class_of[leaves[lane] as usize];
                }
                i += PREDICT_LANES;
            }
            // Ragged tail: the plain serial walk, which counts its own
            // exact path length.
            for r in i..m {
                let (class, visited) = self.walk(root, rows[r]);
                votes[r] += class;
                w += visited;
            }
        }
        *work += w;
    }

    /// Walks `LANES` rows down one tree in lockstep, returning each
    /// lane's leaf id. Each pass of the outer loop advances every lane
    /// by one level, so the dependent-load chain of a single
    /// root-to-leaf walk is hidden behind the independent loads of its
    /// neighbours. The pass count is the tree's precomputed max depth;
    /// lanes that reach a leaf early park there via the leaf's
    /// self-loop children — the step body is the same
    /// load/compare/select for every node kind, with no data-dependent
    /// branch and no work bookkeeping (the caller reads `depth_of`).
    #[inline]
    fn walk_group<const LANES: usize>(
        &self,
        group: &[&[f64]; LANES],
        root: u32,
        depth: u32,
    ) -> [u32; LANES] {
        let mut cur = [root; LANES];
        // A path of d nodes needs d-1 advances; `depth` bounds d.
        for _ in 1..depth {
            for lane in 0..LANES {
                let node = cur[lane] as usize;
                let f = self.step_feature[node] as usize;
                // Branchless child select: `<=` is false for NaN, so
                // NaN features route right like the reference walker
                // (leaves self-loop either way). Both children load
                // unconditionally so the pick lowers to a select, not a
                // branch.
                let go_left = group[lane][f] <= self.threshold[node];
                let l = self.left[node];
                let r = self.right[node];
                cur[lane] = if go_left { l } else { r };
            }
        }
        cur
    }

    /// Classifies a block of rows via [`Self::predict_block`].
    fn predict_rows(&self, view: MatrixView<'_>, rows: std::ops::Range<usize>) -> (Vec<usize>, u64) {
        let m = rows.len();
        let mut row_refs: [&[f64]; BATCH_ROWS] = [&[]; BATCH_ROWS];
        for (i, r) in rows.enumerate() {
            row_refs[i] = view.row(r);
        }
        let mut votes = [0u32; BATCH_ROWS];
        let mut work = 0u64;
        self.predict_block(&row_refs[..m], &mut votes[..m], &mut work);
        let n = self.roots.len();
        (votes[..m].iter().map(|&v| usize::from(v as usize * 2 > n)).collect(), work)
    }
}

/// A bagged ensemble of CART trees with majority voting.
///
/// The `trees` keep the pointer-style arena representation (the golden
/// reference for traversal order, work counting and the codec); `pool`
/// is the flat SoA lowering every prediction path actually walks.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    dims: usize,
    pool: NodePool,
}

impl RandomForest {
    /// Trains a forest on a matrix view (zero-copy over subsets).
    ///
    /// Bootstrap bags and per-tree RNG streams are derived serially from
    /// `rng`, then the trees fit in parallel and are collected in tree
    /// order — the same seed produces a bit-identical forest no matter
    /// how many threads run.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit_view(
        view: MatrixView<'_>,
        y: &[usize],
        config: &ForestConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        let dims = validate_matrix(view, y)?;
        let mut tree_config = config.tree;
        if tree_config.max_features.is_none() {
            // The classic √d default for classification forests.
            tree_config.max_features = Some((dims as f64).sqrt().ceil() as usize);
        }
        let n = view.n_rows();
        let tasks: Vec<(Vec<usize>, SimRng)> = (0..config.n_trees.max(1))
            .map(|_| {
                let bag: Vec<usize> = if config.bootstrap {
                    (0..n).map(|_| rng.below(n as u64) as usize).collect()
                } else {
                    (0..n).collect()
                };
                (bag, rng.fork())
            })
            .collect();
        let trees = par::par_map_indexed(tasks.len(), |t| {
            let (bag, tree_rng) = &tasks[t];
            let mut tree_rng = tree_rng.clone();
            DecisionTree::fit_view(view, y, bag, &tree_config, &mut tree_rng)
        });
        Ok(RandomForest::from_trees(trees, dims))
    }

    /// Assembles a forest from fitted trees, lowering them into the flat
    /// SoA node pool that prediction walks.
    fn from_trees(trees: Vec<DecisionTree>, dims: usize) -> Self {
        let pool = NodePool::from_trees(&trees);
        RandomForest { trees, dims, pool }
    }

    /// Trains a forest on row-of-`Vec`s data (copies once into a flat
    /// matrix, then delegates to [`RandomForest::fit_view`]).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &ForestConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        validate_training_set(x, y)?;
        // Invariant: `validate_training_set` already rejected the two
        // conditions `from_rows` can fail on (empty and ragged input),
        // so this cannot panic on any path that reaches it.
        let m = FeatureMatrix::from_rows(x)
            .expect("validate_training_set rejects empty and ragged rows");
        RandomForest::fit_view(m.view(), y, config, rng)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total nodes across all trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Decodes a forest from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(FOREST_MAGIC)?;
        let dims = d.get_usize()?;
        let count = d.get_usize()?;
        if count > 1 << 16 {
            return Err(DecodeError::Corrupt("tree count"));
        }
        let trees: Vec<DecisionTree> =
            (0..count).map(|_| DecisionTree::decode_from(&mut d)).collect::<Result<_, _>>()?;
        Ok(RandomForest::from_trees(trees, dims))
    }

    /// Tree-outer lockstep vote accumulation over a contiguous row
    /// range: raw malicious-vote counts land in `votes` (one slot per
    /// row, pre-zeroed by the caller) and the return value is the
    /// visited-node work. Shared core of
    /// [`Classifier::predict_batch_into`] and the span variant — lane
    /// grouping depends on where the range starts, but every row pays
    /// the exact path length of the leaf it lands on and votes with that
    /// leaf's class, so the split into ranges can never change any
    /// output.
    fn lockstep_votes(
        &self,
        view: MatrixView<'_>,
        rows: std::ops::Range<usize>,
        votes: &mut [usize],
    ) -> u64 {
        debug_assert_eq!(votes.len(), rows.len());
        let base = rows.start;
        let m = rows.len();
        let mut work = 0u64;
        for (&root, &depth) in self.pool.roots.iter().zip(&self.pool.depths) {
            let mut i = 0;
            while i + PREDICT_LANES <= m {
                let group: [&[f64]; PREDICT_LANES] =
                    std::array::from_fn(|l| view.row(base + i + l));
                let leaves = self.pool.walk_group(&group, root, depth);
                for &leaf in &leaves {
                    work += u64::from(self.pool.depth_of[leaf as usize]);
                }
                for lane in 0..PREDICT_LANES {
                    votes[i + lane] += self.pool.class_of[leaves[lane] as usize] as usize;
                }
                i += PREDICT_LANES;
            }
            for (r, v) in votes.iter_mut().enumerate().skip(i) {
                let (class, visited) = self.pool.walk(root, view.row(base + r));
                *v += class as usize;
                work += visited;
            }
        }
        work
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn predict(&self, features: &[f64]) -> usize {
        self.pool.predict_with_work(features).0
    }

    fn predict_with_work(&self, features: &[f64]) -> (usize, u64) {
        self.pool.predict_with_work(features)
    }

    fn predict_batch(&self, view: MatrixView<'_>) -> Vec<usize> {
        self.predict_batch_with_work(view).0
    }

    fn predict_batch_with_work(&self, view: MatrixView<'_>) -> (Vec<usize>, u64) {
        // Fixed-size row blocks keep the split deterministic at any
        // thread count; each block walks the shared SoA pool in lockstep.
        let parts = par::par_chunks(view.n_rows(), BATCH_ROWS, |r| self.pool.predict_rows(view, r));
        let mut classes = Vec::with_capacity(view.n_rows());
        let mut work = 0u64;
        for (part, w) in parts {
            classes.extend(part);
            work += w;
        }
        (classes, work)
    }

    fn predict_batch_into(&self, view: MatrixView<'_>, out: &mut Vec<usize>) -> u64 {
        // Serial lockstep with the trees on the OUTER loop: each tree's
        // node lanes are pulled into cache once and stay hot across the
        // whole matrix, instead of being re-fetched per row block. The
        // walks and work totals are node-for-node identical to the
        // parallel batch; `out` doubles as the vote accumulator, so the
        // only heap touch is its one-time growth to `n_rows`.
        let n_rows = view.n_rows();
        out.clear();
        out.resize(n_rows, 0);
        let work = self.lockstep_votes(view, 0..n_rows, out);
        let n = self.pool.roots.len();
        for votes in out.iter_mut() {
            *votes = usize::from(*votes * 2 > n);
        }
        work
    }

    fn predict_batch_spans_into(
        &self,
        view: MatrixView<'_>,
        spans: &[RowSpan],
        out: &mut Vec<usize>,
        span_work: &mut Vec<u64>,
    ) -> u64 {
        // Same lockstep core as `predict_batch_into`, run span by span
        // so each span's visited-node work is attributed exactly; `out`
        // again doubles as the vote accumulator.
        let total_rows: usize = spans.iter().map(|s| s.len).sum();
        out.clear();
        out.resize(total_rows, 0);
        span_work.clear();
        span_work.reserve(spans.len());
        let n = self.pool.roots.len();
        let mut total = 0u64;
        let mut offset = 0usize;
        for span in spans {
            let votes = &mut out[offset..offset + span.len];
            let work = self.lockstep_votes(view, span.range(), votes);
            for v in votes.iter_mut() {
                *v = usize::from(*v * 2 > n);
            }
            span_work.push(work);
            total += work;
            offset += span.len;
        }
        total
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(FOREST_MAGIC);
        e.put_usize(self.dims);
        e.put_usize(self.trees.len());
        for tree in &self.trees {
            tree.encode_into(&mut e);
        }
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        // Arena nodes dominate: tag + feature + threshold + child ids.
        (self.total_nodes() * std::mem::size_of::<Node>()) as u64
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::gather;

    /// Two Gaussian-ish blobs separable on feature 0.
    fn blobs(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            x.push(vec![center + rng.standard_normal(), rng.standard_normal()]);
            y.push(class);
        }
        (x, y)
    }

    /// XOR-ish data: not linearly separable, needs depth >= 2.
    fn xor(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.uniform() > 0.5;
            let b = rng.uniform() > 0.5;
            let ja = rng.uniform_range(-0.3, 0.3);
            let jb = rng.uniform_range(-0.3, 0.3);
            x.push(vec![f64::from(a) + ja, f64::from(b) + jb]);
            y.push(usize::from(a ^ b));
        }
        (x, y)
    }

    #[test]
    fn tree_separates_blobs() {
        let mut rng = SimRng::seed_from(1);
        let (x, y) = blobs(400, &mut rng);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "train acc {correct}/400");
    }

    #[test]
    fn forest_learns_xor() {
        let mut rng = SimRng::seed_from(2);
        let (x, y) = xor(600, &mut rng);
        let (xt, yt) = xor(200, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let correct = xt.iter().zip(&yt).filter(|(xi, &yi)| forest.predict(xi) == yi).count();
        assert!(correct as f64 / xt.len() as f64 > 0.9, "test acc {correct}/200");
    }

    #[test]
    fn forest_beats_single_majority_baseline() {
        let mut rng = SimRng::seed_from(3);
        let (x, y) = blobs(300, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let acc = x.iter().zip(&y).filter(|(xi, &yi)| forest.predict(xi) == yi).count() as f64
            / x.len() as f64;
        assert!(acc > 0.5 + 0.2, "forest accuracy {acc}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut rng = SimRng::seed_from(4);
        let (x, y) = xor(300, &mut rng);
        let config = TreeConfig { max_depth: 3, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&x, &y, &config, &mut rng).unwrap();
        assert!(tree.depth() <= 4, "depth {} (root at depth 1)", tree.depth());
    }

    #[test]
    fn codec_roundtrip_preserves_predictions() {
        let mut rng = SimRng::seed_from(5);
        let (x, y) = blobs(200, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 7, ..Default::default() }, &mut rng)
            .unwrap();
        let blob = forest.encode();
        let back = RandomForest::decode(&blob).unwrap();
        assert_eq!(back.n_trees(), 7);
        for xi in &x {
            assert_eq!(forest.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn training_rejects_single_class() {
        let mut rng = SimRng::seed_from(6);
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![0, 0];
        assert_eq!(
            RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng),
            Err(TrainError::SingleClass)
        );
    }

    #[test]
    fn model_size_grows_with_trees() {
        let mut rng = SimRng::seed_from(7);
        let (x, y) = blobs(200, &mut rng);
        let small =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 3, ..Default::default() }, &mut rng)
                .unwrap();
        let large =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 30, ..Default::default() }, &mut rng)
                .unwrap();
        assert!(large.encode().len() > small.encode().len());
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = SimRng::seed_from(8);
            let (x, y) = blobs(150, &mut rng);
            RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap().encode()
        };
        assert_eq!(build(), build());
    }

    /// Regression test for the historical NaN panic: split search used
    /// `partial_cmp(..).expect("finite features")`, so a single NaN cell
    /// aborted training. NaNs now sort via `total_cmp`, are excluded
    /// from candidate thresholds, and route right at predict time.
    #[test]
    fn nan_features_train_without_panicking() {
        let mut rng = SimRng::seed_from(9);
        let (mut x, y) = blobs(120, &mut rng);
        for i in (0..x.len()).step_by(7) {
            x[i][1] = f64::NAN;
        }
        let forest = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 5, ..Default::default() }, &mut rng)
            .unwrap();
        // Clean rows still classify well — blobs separate on feature 0.
        let clean: Vec<usize> = (0..x.len()).filter(|i| i % 7 != 0).collect();
        let correct =
            clean.iter().filter(|&&i| forest.predict(&x[i]) == y[i]).count();
        assert!(correct as f64 / clean.len() as f64 > 0.9);
        // A NaN probe routes to *some* leaf rather than panicking.
        let _ = forest.predict(&[f64::NAN, f64::NAN]);
    }

    /// The zero-copy subset path must behave exactly like materialising
    /// the subset rows and training on the copy.
    #[test]
    fn subset_view_training_matches_materialized_copy() {
        let mut rng = SimRng::seed_from(10);
        let (x, y) = blobs(200, &mut rng);
        let subset: Vec<usize> = (0..x.len()).filter(|i| i % 3 != 0).collect();
        let m = FeatureMatrix::from_rows(&x).unwrap();
        let ys = gather(&y, &subset);

        let mut rng_a = SimRng::seed_from(11);
        let via_view =
            RandomForest::fit_view(m.subset(&subset), &ys, &ForestConfig::default(), &mut rng_a)
                .unwrap();
        let rows: Vec<Vec<f64>> = subset.iter().map(|&i| x[i].clone()).collect();
        let mut rng_b = SimRng::seed_from(11);
        let via_copy = RandomForest::fit(&rows, &ys, &ForestConfig::default(), &mut rng_b).unwrap();
        assert_eq!(via_view.encode(), via_copy.encode());
    }

    /// The profiling hook agrees with `predict` and reports the nodes
    /// visited — at least one per tree (the root), at most the forest.
    #[test]
    fn predict_with_work_counts_visited_nodes() {
        let mut rng = SimRng::seed_from(13);
        let (x, y) = blobs(200, &mut rng);
        let forest =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 5, ..Default::default() }, &mut rng)
                .unwrap();
        for xi in x.iter().take(20) {
            let (class, work) = forest.predict_with_work(xi);
            assert_eq!(class, forest.predict(xi));
            assert!(work >= forest.n_trees() as u64, "work {work}");
            assert!(work <= forest.total_nodes() as u64, "work {work}");
        }
    }

    /// The flat SoA walker is a pure re-layout: across seeds (and with
    /// NaN probes mixed in) it must agree with the pointer-chasing
    /// reference trees on every class *and* every visited-node count —
    /// the counts feed the byte-pinned predict-work telemetry.
    #[test]
    fn soa_walker_matches_reference_trees_across_seeds() {
        for seed in [21u64, 22, 23, 24, 25] {
            let mut rng = SimRng::seed_from(seed);
            let (mut x, y) = xor(250, &mut rng);
            for i in (0..x.len()).step_by(11) {
                x[i][0] = f64::NAN;
            }
            let forest =
                RandomForest::fit(&x, &y, &ForestConfig { n_trees: 9, ..Default::default() }, &mut rng)
                    .unwrap();
            let m = FeatureMatrix::from_rows(&x).unwrap();
            let (batch, batch_work) = forest.predict_batch_with_work(m.view());
            let mut reference_work = 0u64;
            for (i, xi) in x.iter().enumerate() {
                let mut votes = 0usize;
                let mut work = 0u64;
                for tree in &forest.trees {
                    let (class, visited) = tree.predict_counting(xi);
                    votes += class;
                    work += visited;
                }
                let reference = usize::from(votes * 2 > forest.trees.len());
                assert_eq!(forest.predict(xi), reference, "row {i} seed {seed}");
                assert_eq!(forest.predict_with_work(xi), (reference, work), "row {i} seed {seed}");
                assert_eq!(batch[i], reference, "batch row {i} seed {seed}");
                reference_work += work;
            }
            assert_eq!(batch_work, reference_work, "seed {seed}");
        }
    }

    /// The span override must reproduce `predict_batch_into` exactly
    /// (predictions and total work) for any tiling of the matrix, with
    /// per-span work summing to the total — including spans whose length
    /// is not a multiple of the lockstep lane width.
    #[test]
    fn span_batch_matches_plain_batch_for_any_tiling() {
        let mut rng = SimRng::seed_from(31);
        let (x, y) = xor(150, &mut rng);
        let forest =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 7, ..Default::default() }, &mut rng)
                .unwrap();
        let m = FeatureMatrix::from_rows(&x).unwrap();
        let mut plain = Vec::new();
        let plain_work = forest.predict_batch_into(m.view(), &mut plain);
        for lens in [vec![150], vec![64, 86], vec![1, 7, 64, 13, 65], vec![50, 0, 100]] {
            let mut spans = Vec::new();
            let mut start = 0;
            for len in lens {
                spans.push(RowSpan { start, len });
                start += len;
            }
            let mut spanned = Vec::new();
            let mut span_work = Vec::new();
            let total =
                forest.predict_batch_spans_into(m.view(), &spans, &mut spanned, &mut span_work);
            assert_eq!(spanned, plain, "{spans:?}");
            assert_eq!(total, plain_work, "{spans:?}");
            assert_eq!(span_work.iter().sum::<u64>(), total, "{spans:?}");
            assert_eq!(span_work.len(), spans.len());
        }
    }

    /// Same seed ⇒ bit-identical forest at any thread budget.
    #[test]
    fn training_is_thread_count_invariant() {
        let build = |threads: usize| {
            par::with_threads(threads, || {
                let mut rng = SimRng::seed_from(12);
                let (x, y) = xor(200, &mut rng);
                RandomForest::fit(&x, &y, &ForestConfig { n_trees: 8, ..Default::default() }, &mut rng)
                    .unwrap()
                    .encode()
            })
        };
        assert_eq!(build(1), build(4));
    }
}
