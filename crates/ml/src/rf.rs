//! Random Forest: CART decision trees with Gini impurity, bootstrap
//! bagging and per-split feature subsampling — the mechanisms the paper
//! describes for its RF model (§III-B).

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::classifier::{validate_training_set, Classifier, TrainError};
use crate::codec::{DecodeError, Decoder, Encoder};

const TREE_MAGIC: u32 = 0x7472_6565; // "tree"
const FOREST_MAGIC: u32 = 0x666f_7273; // "fors"

/// Hyper-parameters of a single CART tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a node needs to be split further.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// Candidate thresholds evaluated per feature.
    pub threshold_candidates: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 12, min_samples_split: 4, max_features: None, threshold_candidates: 24 }
    }
}

/// Hyper-parameters of the forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (feature subsampling defaults to √d when
    /// `max_features` is `None`).
    pub tree: TreeConfig,
    /// Bootstrap-sample the training set per tree.
    pub bootstrap: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { n_trees: 30, tree: TreeConfig::default(), bootstrap: true }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f64, left: u32, right: u32 },
}

/// A CART decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    dims: usize,
}

impl DecisionTree {
    /// Fits a tree on `(x, y)` restricted to `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_on(
        x: &[Vec<f64>],
        y: &[usize],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on no samples");
        let dims = x[0].len();
        let mut tree = DecisionTree { nodes: Vec::new(), dims };
        let root_indices: Vec<usize> = indices.to_vec();
        tree.grow(x, y, root_indices, 0, config, rng);
        tree
    }

    /// Fits a tree on the full training set.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        validate_training_set(x, y)?;
        let indices: Vec<usize> = (0..x.len()).collect();
        Ok(DecisionTree::fit_on(x, y, &indices, config, rng))
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
        rng: &mut SimRng,
    ) -> u32 {
        let majority = majority_class(y, &indices);
        let node_id = self.nodes.len() as u32;
        if depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || is_pure(y, &indices)
        {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        }
        let Some((feature, threshold)) = best_split(x, y, &indices, config, rng) else {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { class: majority });
            return node_id;
        }
        // Reserve the split slot, then grow children.
        self.nodes.push(Node::Leaf { class: majority });
        let left = self.grow(x, y, left_idx, depth + 1, config, rng);
        let right = self.grow(x, y, right_idx, depth + 1, config, rng);
        self.nodes[node_id as usize] = Node::Split { feature, threshold, left, right };
        node_id
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut node = 0u32;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: u32) -> usize {
            match &nodes[id as usize] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    fn encode_into(&self, e: &mut Encoder) {
        e.put_u32(TREE_MAGIC);
        e.put_usize(self.dims);
        e.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { class } => {
                    e.put_u8(0);
                    e.put_usize(*class);
                }
                Node::Split { feature, threshold, left, right } => {
                    e.put_u8(1);
                    e.put_usize(*feature);
                    e.put_f64(*threshold);
                    e.put_u32(*left);
                    e.put_u32(*right);
                }
            }
        }
    }

    fn decode_from(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.expect_magic(TREE_MAGIC)?;
        let dims = d.get_usize()?;
        let count = d.get_usize()?;
        let mut nodes = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let node = match d.get_u8()? {
                0 => Node::Leaf { class: d.get_usize()? },
                1 => Node::Split {
                    feature: d.get_usize()?,
                    threshold: d.get_f64()?,
                    left: d.get_u32()?,
                    right: d.get_u32()?,
                },
                _ => return Err(DecodeError::Corrupt("node tag")),
            };
            nodes.push(node);
        }
        Ok(DecisionTree { nodes, dims })
    }
}

fn majority_class(y: &[usize], indices: &[usize]) -> usize {
    let positives = indices.iter().filter(|&&i| y[i] == 1).count();
    usize::from(positives * 2 > indices.len())
}

fn is_pure(y: &[usize], indices: &[usize]) -> bool {
    let first = y[indices[0]];
    indices.iter().all(|&i| y[i] == first)
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// Finds the (feature, threshold) minimising weighted Gini impurity over
/// sampled candidate thresholds.
fn best_split(
    x: &[Vec<f64>],
    y: &[usize],
    indices: &[usize],
    config: &TreeConfig,
    rng: &mut SimRng,
) -> Option<(usize, f64)> {
    let dims = x[0].len();
    let n_features = config.max_features.unwrap_or(dims).min(dims);
    let mut features: Vec<usize> = (0..dims).collect();
    rng.shuffle(&mut features);
    features.truncate(n_features);

    let total = indices.len();
    let total_pos = indices.iter().filter(|&&i| y[i] == 1).count();
    let parent = gini(total_pos, total);

    let mut best: Option<(f64, usize, f64)> = None;
    for &feature in &features {
        // Midpoints between consecutive *distinct* values are the only
        // thresholds worth trying (handles binary/discrete features that
        // evenly spaced order statistics would miss).
        let mut values: Vec<f64> = indices.iter().map(|&i| x[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let midpoints: Vec<f64> =
            values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
        // Evenly subsample if there are more midpoints than the budget.
        let budget = config.threshold_candidates.max(1);
        let chosen: Vec<f64> = if midpoints.len() <= budget {
            midpoints
        } else {
            (0..budget)
                .map(|c| midpoints[c * (midpoints.len() - 1) / (budget - 1).max(1)])
                .collect()
        };
        for threshold in chosen {
            let mut left_n = 0usize;
            let mut left_pos = 0usize;
            for &i in indices {
                if x[i][feature] <= threshold {
                    left_n += 1;
                    left_pos += usize::from(y[i] == 1);
                }
            }
            let right_n = total - left_n;
            if left_n == 0 || right_n == 0 {
                continue;
            }
            let right_pos = total_pos - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            let gain = parent - weighted;
            if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, feature, threshold));
            }
        }
    }
    best.map(|(_, feature, threshold)| (feature, threshold))
}

/// A bagged ensemble of CART trees with majority voting.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    dims: usize,
}

impl RandomForest {
    /// Trains a forest.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for unusable training data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        config: &ForestConfig,
        rng: &mut SimRng,
    ) -> Result<Self, TrainError> {
        let dims = validate_training_set(x, y)?;
        let mut tree_config = config.tree;
        if tree_config.max_features.is_none() {
            // The classic √d default for classification forests.
            tree_config.max_features = Some((dims as f64).sqrt().ceil() as usize);
        }
        let n = x.len();
        let trees = (0..config.n_trees.max(1))
            .map(|_| {
                let indices: Vec<usize> = if config.bootstrap {
                    (0..n).map(|_| rng.below(n as u64) as usize).collect()
                } else {
                    (0..n).collect()
                };
                DecisionTree::fit_on(x, y, &indices, &tree_config, rng)
            })
            .collect();
        Ok(RandomForest { trees, dims })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total nodes across all trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Decodes a forest from its binary blob.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn decode(blob: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(blob);
        d.expect_magic(FOREST_MAGIC)?;
        let dims = d.get_usize()?;
        let count = d.get_usize()?;
        if count > 1 << 16 {
            return Err(DecodeError::Corrupt("tree count"));
        }
        let trees = (0..count).map(|_| DecisionTree::decode_from(&mut d)).collect::<Result<_, _>>()?;
        Ok(RandomForest { trees, dims })
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn predict(&self, features: &[f64]) -> usize {
        let votes: usize = self.trees.iter().map(|t| t.predict(features)).sum();
        usize::from(votes * 2 > self.trees.len())
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(FOREST_MAGIC);
        e.put_usize(self.dims);
        e.put_usize(self.trees.len());
        for tree in &self.trees {
            tree.encode_into(&mut e);
        }
        e.finish()
    }

    fn memory_bytes(&self) -> u64 {
        // Arena nodes dominate: tag + feature + threshold + child ids.
        (self.total_nodes() * std::mem::size_of::<Node>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two Gaussian-ish blobs separable on feature 0.
    fn blobs(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            x.push(vec![center + rng.standard_normal(), rng.standard_normal()]);
            y.push(class);
        }
        (x, y)
    }

    /// XOR-ish data: not linearly separable, needs depth >= 2.
    fn xor(n: usize, rng: &mut SimRng) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.uniform() > 0.5;
            let b = rng.uniform() > 0.5;
            let ja = rng.uniform_range(-0.3, 0.3);
            let jb = rng.uniform_range(-0.3, 0.3);
            x.push(vec![f64::from(a) + ja, f64::from(b) + jb]);
            y.push(usize::from(a ^ b));
        }
        (x, y)
    }

    #[test]
    fn tree_separates_blobs() {
        let mut rng = SimRng::seed_from(1);
        let (x, y) = blobs(400, &mut rng);
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default(), &mut rng).unwrap();
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "train acc {correct}/400");
    }

    #[test]
    fn forest_learns_xor() {
        let mut rng = SimRng::seed_from(2);
        let (x, y) = xor(600, &mut rng);
        let (xt, yt) = xor(200, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let correct = xt.iter().zip(&yt).filter(|(xi, &yi)| forest.predict(xi) == yi).count();
        assert!(correct as f64 / xt.len() as f64 > 0.9, "test acc {correct}/200");
    }

    #[test]
    fn forest_beats_single_majority_baseline() {
        let mut rng = SimRng::seed_from(3);
        let (x, y) = blobs(300, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let acc = x.iter().zip(&y).filter(|(xi, &yi)| forest.predict(xi) == yi).count() as f64
            / x.len() as f64;
        assert!(acc > 0.5 + 0.2, "forest accuracy {acc}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut rng = SimRng::seed_from(4);
        let (x, y) = xor(300, &mut rng);
        let config = TreeConfig { max_depth: 3, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&x, &y, &config, &mut rng).unwrap();
        assert!(tree.depth() <= 4, "depth {} (root at depth 1)", tree.depth());
    }

    #[test]
    fn codec_roundtrip_preserves_predictions() {
        let mut rng = SimRng::seed_from(5);
        let (x, y) = blobs(200, &mut rng);
        let forest = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 7, ..Default::default() }, &mut rng)
            .unwrap();
        let blob = forest.encode();
        let back = RandomForest::decode(&blob).unwrap();
        assert_eq!(back.n_trees(), 7);
        for xi in &x {
            assert_eq!(forest.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn training_rejects_single_class() {
        let mut rng = SimRng::seed_from(6);
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![0, 0];
        assert_eq!(
            RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng),
            Err(TrainError::SingleClass)
        );
    }

    #[test]
    fn model_size_grows_with_trees() {
        let mut rng = SimRng::seed_from(7);
        let (x, y) = blobs(200, &mut rng);
        let small =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 3, ..Default::default() }, &mut rng)
                .unwrap();
        let large =
            RandomForest::fit(&x, &y, &ForestConfig { n_trees: 30, ..Default::default() }, &mut rng)
                .unwrap();
        assert!(large.encode().len() > small.encode().len());
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = SimRng::seed_from(8);
            let (x, y) = blobs(150, &mut rng);
            RandomForest::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap().encode()
        };
        assert_eq!(build(), build());
    }
}
