//! The Mirai-style C2 wire protocol and attack vocabulary.
//!
//! Bots and the command-and-control server exchange CRLF-terminated ASCII
//! lines: bots register with `REG <id>` and keep alive with `PING`; the
//! C2 launches floods with `ATTACK <vector> <addr> <port> <secs> <pps>`
//! and cancels them with `STOP`.

use std::fmt;
use std::str::FromStr;

use netsim::packet::Addr;
use serde::{Deserialize, Serialize};

/// The TCP port the C2 server listens on (Mirai's report port).
pub const C2_PORT: u16 = 48_101;

/// The telnet port scanned and exploited on devices.
pub const TELNET_PORT: u16 = 23;

/// Interval between `PING` keepalives a bot sends on its C2 connection.
pub const C2_KEEPALIVE: netsim::time::SimDuration = netsim::time::SimDuration::from_secs(10);

/// How long the C2 tolerates silence on a bot connection before evicting
/// it as dead (2.5 keepalive periods: one lost PING is forgiven, two are
/// not). Missed heartbeats — not TCP resets — are what detect a device
/// that lost power mid-session, because an idle connection to a dead
/// peer emits no segments at all.
pub const C2_HEARTBEAT_TIMEOUT: netsim::time::SimDuration =
    netsim::time::SimDuration::from_secs(25);

/// A DDoS attack vector: the three the paper evaluates plus the
/// application-level HTTP flood the paper defers ("avoiding more complex
/// application-level attacks like HTTP Flood ... which necessitate
/// additional application-level analysis", §IV-D) — implemented here as
/// an extension so that claim can be tested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// TCP SYN flood: exhausts the victim's listener backlog.
    SynFlood,
    /// TCP ACK flood: stray segments that burn RSTs and bandwidth.
    AckFlood,
    /// UDP flood: volumetric datagrams to random ports.
    UdpFlood,
    /// HTTP flood: full TCP connections issuing real GET requests —
    /// indistinguishable from legitimate traffic at the packet level.
    HttpFlood,
}

impl AttackVector {
    /// The three vectors the paper evaluates, in its order.
    pub const ALL: [AttackVector; 3] =
        [AttackVector::SynFlood, AttackVector::AckFlood, AttackVector::UdpFlood];

    /// All implemented vectors, including the HTTP-flood extension.
    pub const EXTENDED: [AttackVector; 4] = [
        AttackVector::SynFlood,
        AttackVector::AckFlood,
        AttackVector::UdpFlood,
        AttackVector::HttpFlood,
    ];

    /// `true` for vectors that ride real TCP connections rather than raw
    /// packets.
    pub const fn is_application_level(self) -> bool {
        matches!(self, AttackVector::HttpFlood)
    }
}

impl fmt::Display for AttackVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttackVector::SynFlood => "SYN",
            AttackVector::AckFlood => "ACK",
            AttackVector::UdpFlood => "UDP",
            AttackVector::HttpFlood => "HTTP",
        };
        f.write_str(name)
    }
}

/// Error parsing an [`AttackVector`] or [`C2Command`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommandError {
    what: String,
}

impl fmt::Display for ParseCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unparseable c2 message: {}", self.what)
    }
}

impl std::error::Error for ParseCommandError {}

impl FromStr for AttackVector {
    type Err = ParseCommandError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "SYN" => Ok(AttackVector::SynFlood),
            "ACK" => Ok(AttackVector::AckFlood),
            "UDP" => Ok(AttackVector::UdpFlood),
            "HTTP" => Ok(AttackVector::HttpFlood),
            other => Err(ParseCommandError { what: other.to_owned() }),
        }
    }
}

/// An attack order as carried on the C2 channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackOrder {
    /// Flood type.
    pub vector: AttackVector,
    /// Victim address.
    pub target: Addr,
    /// Victim port (SYN/ACK floods aim here; UDP floods randomise).
    pub port: u16,
    /// Attack duration in seconds.
    pub duration_secs: u32,
    /// Packets per second *per bot*.
    pub pps: u32,
}

/// Messages sent from the C2 server to bots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum C2Command {
    /// Launch a flood.
    Attack(AttackOrder),
    /// Cease the current flood.
    Stop,
}

impl fmt::Display for C2Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            C2Command::Attack(o) => write!(
                f,
                "ATTACK {} {} {} {} {}",
                o.vector,
                o.target,
                o.port,
                o.duration_secs,
                o.pps
            ),
            C2Command::Stop => f.write_str("STOP"),
        }
    }
}

impl FromStr for C2Command {
    type Err = ParseCommandError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCommandError { what: s.to_owned() };
        let mut parts = s.split_whitespace();
        match parts.next() {
            Some("STOP") => Ok(C2Command::Stop),
            Some("ATTACK") => {
                let vector: AttackVector = parts.next().ok_or_else(err)?.parse()?;
                let target = parse_addr(parts.next().ok_or_else(err)?).ok_or_else(err)?;
                let port = parts.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
                let duration_secs = parts.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
                let pps = parts.next().and_then(|p| p.parse().ok()).ok_or_else(err)?;
                Ok(C2Command::Attack(AttackOrder { vector, target, port, duration_secs, pps }))
            }
            _ => Err(err()),
        }
    }
}

/// Parses a dotted-quad address.
pub fn parse_addr(s: &str) -> Option<Addr> {
    let mut octets = [0u8; 4];
    let mut parts = s.split('.');
    for octet in &mut octets {
        *octet = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(Addr::from(octets))
}

/// The Mirai credential dictionary (a representative subset of the 62
/// factory default pairs the real malware ships).
pub const MIRAI_DICTIONARY: [(&str, &str); 10] = [
    ("root", "xc3511"),
    ("root", "vizxv"),
    ("root", "admin"),
    ("admin", "admin"),
    ("root", "888888"),
    ("root", "default"),
    ("root", "123456"),
    ("admin", "password"),
    ("root", "54321"),
    ("support", "support"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_roundtrips_through_text() {
        for v in AttackVector::EXTENDED {
            assert_eq!(v.to_string().parse::<AttackVector>().unwrap(), v);
        }
        assert!("DNS".parse::<AttackVector>().is_err());
        assert!(AttackVector::HttpFlood.is_application_level());
        assert!(!AttackVector::SynFlood.is_application_level());
    }

    #[test]
    fn attack_command_roundtrips() {
        let order = AttackOrder {
            vector: AttackVector::SynFlood,
            target: Addr::new(10, 0, 0, 2),
            port: 80,
            duration_secs: 30,
            pps: 500,
        };
        let line = C2Command::Attack(order).to_string();
        assert_eq!(line, "ATTACK SYN 10.0.0.2 80 30 500");
        assert_eq!(line.parse::<C2Command>().unwrap(), C2Command::Attack(order));
    }

    #[test]
    fn stop_roundtrips() {
        assert_eq!("STOP".parse::<C2Command>().unwrap(), C2Command::Stop);
        assert_eq!(C2Command::Stop.to_string(), "STOP");
    }

    #[test]
    fn malformed_commands_error() {
        for bad in ["", "ATTACK", "ATTACK SYN", "ATTACK SYN 10.0.0.2", "ATTACK SYN nonsense 80 1 1"] {
            assert!(bad.parse::<C2Command>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn addr_parsing() {
        assert_eq!(parse_addr("10.0.1.200"), Some(Addr::new(10, 0, 1, 200)));
        assert_eq!(parse_addr("10.0.1"), None);
        assert_eq!(parse_addr("10.0.1.200.5"), None);
        assert_eq!(parse_addr("10.0.1.999"), None);
    }

    #[test]
    fn dictionary_is_nonempty_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for pair in MIRAI_DICTIONARY {
            assert!(seen.insert(pair), "duplicate {pair:?}");
        }
    }
}
