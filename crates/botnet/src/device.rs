//! The device-side half of the botnet: a vulnerable telnet-like service
//! and the dormant bot it turns into once infected.
//!
//! Mirai's life-cycle on a device is: (1) the scanner logs into the
//! factory-default telnet account, (2) the loader drops and starts the
//! bot binary, (3) the bot dials home to the C2 and waits for attack
//! orders. [`DeviceAgent`] implements all three phases inside one hosted
//! application, exactly as the malware runs inside one compromised
//! device.

use std::collections::HashMap;

use netsim::packet::Addr;
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx};
use netsim::{ConnId, TcpEvent};

use crate::commands::{parse_addr, C2Command, C2_KEEPALIVE, TELNET_PORT};
use crate::flood::{flood_packet, FloodConfig};
use crate::line::LineBuffer;
use crate::stats::BotnetStats;

/// Interval between flood generation ticks.
const FLOOD_TICK: SimDuration = SimDuration::from_millis(10);
/// Bot keepalive interval (shared with the C2's heartbeat bookkeeping).
const KEEPALIVE: SimDuration = C2_KEEPALIVE;
/// First re-dial delay after a lost C2 connection; doubles per
/// consecutive failure up to [`RECONNECT_CAP`].
const RECONNECT_BASE: SimDuration = SimDuration::from_secs(2);
/// Ceiling on the exponential reconnect backoff.
const RECONNECT_CAP: SimDuration = SimDuration::from_secs(60);

const TOKEN_FLOOD_TICK: u64 = 1;
const TOKEN_KEEPALIVE: u64 = 2;
const TOKEN_RECONNECT: u64 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TelnetState {
    WaitUser,
    WaitPass,
    Shell,
}

#[derive(Debug)]
struct TelnetSession {
    buffer: LineBuffer,
    state: TelnetState,
    user: String,
}

#[derive(Debug)]
struct ActiveAttack {
    order: crate::commands::AttackOrder,
    ends_at: SimTime,
    carry: f64,
}

/// Concurrent connections an HTTP-flooding bot keeps open.
const HTTP_FLOOD_CONNS: usize = 4;

/// A vulnerable IoT device binary plus its (initially dormant) bot.
#[derive(Debug)]
pub struct DeviceAgent {
    credentials: (String, String),
    stats: BotnetStats,
    rng: SimRng,
    flood_config: FloodConfig,
    sessions: HashMap<ConnId, TelnetSession>,
    infected: bool,
    c2: Option<(Addr, u16)>,
    c2_conn: Option<ConnId>,
    c2_buffer: LineBuffer,
    attack: Option<ActiveAttack>,
    tick_armed: bool,
    http_conns: Vec<ConnId>,
    http_rr: usize,
    /// Consecutive failed C2 dials since the last registration; drives
    /// the exponential reconnect backoff.
    reconnect_attempts: u32,
}

impl DeviceAgent {
    /// Creates a device whose telnet service accepts the given
    /// user/password pair. Devices given a pair from
    /// [`crate::commands::MIRAI_DICTIONARY`] are crackable; others are
    /// effectively immune.
    pub fn new(
        user: impl Into<String>,
        password: impl Into<String>,
        flood_config: FloodConfig,
        stats: BotnetStats,
        rng: SimRng,
    ) -> Self {
        DeviceAgent {
            credentials: (user.into(), password.into()),
            stats,
            rng,
            flood_config,
            sessions: HashMap::new(),
            infected: false,
            c2: None,
            c2_conn: None,
            c2_buffer: LineBuffer::new(),
            attack: None,
            tick_armed: false,
            http_conns: Vec::new(),
            http_rr: 0,
            reconnect_attempts: 0,
        }
    }

    /// Whether the device has been compromised.
    pub fn is_infected(&self) -> bool {
        self.infected
    }

    fn reply(&self, ctx: &mut Ctx<'_>, conn: ConnId, text: &str) {
        ctx.tcp_send(conn, format!("{text}\r\n").as_bytes());
    }

    fn dial_c2(&mut self, ctx: &mut Ctx<'_>) {
        if self.c2_conn.is_some() {
            return;
        }
        if let Some((addr, port)) = self.c2 {
            let conn = ctx.tcp_connect(addr, port);
            self.c2_conn = Some(conn);
        }
    }

    /// Arms the reconnect timer with capped exponential backoff plus
    /// ±25 % jitter drawn from the device's own seeded RNG, so retry
    /// storms decorrelate across bots while staying reproducible.
    fn schedule_reconnect(&mut self, ctx: &mut Ctx<'_>) {
        let doubled = RECONNECT_BASE.as_secs_f64() * f64::from(2u32.pow(self.reconnect_attempts.min(8)));
        let base = doubled.min(RECONNECT_CAP.as_secs_f64());
        let jitter = 0.75 + 0.5 * self.rng.uniform();
        self.reconnect_attempts = self.reconnect_attempts.saturating_add(1);
        ctx.set_timer(SimDuration::from_secs_f64(base * jitter), TOKEN_RECONNECT);
    }

    fn handle_telnet_line(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: String) {
        let Some(state) = self.sessions.get(&conn).map(|s| s.state) else { return };
        match state {
            TelnetState::WaitUser => {
                if let Some(session) = self.sessions.get_mut(&conn) {
                    session.user = line;
                    session.state = TelnetState::WaitPass;
                }
                self.reply(ctx, conn, "Password:");
            }
            TelnetState::WaitPass => {
                let user = self.sessions.get(&conn).map(|s| s.user.clone()).unwrap_or_default();
                self.stats.add_login_attempt();
                if (user.as_str(), line.as_str())
                    == (self.credentials.0.as_str(), self.credentials.1.as_str())
                {
                    if let Some(session) = self.sessions.get_mut(&conn) {
                        session.state = TelnetState::Shell;
                    }
                    self.stats.add_login_ok(ctx.now(), ctx.addr());
                    self.reply(ctx, conn, "SHELL");
                } else {
                    self.reply(ctx, conn, "DENIED");
                    ctx.tcp_close(conn);
                    self.sessions.remove(&conn);
                }
            }
            TelnetState::Shell => {
                if let Some(rest) = line.strip_prefix("INSTALL ") {
                    let mut parts = rest.split_whitespace();
                    let addr = parts.next().and_then(parse_addr);
                    let port: Option<u16> = parts.next().and_then(|p| p.parse().ok());
                    if let (Some(addr), Some(port)) = (addr, port) {
                        if !self.infected {
                            self.infected = true;
                            self.stats.add_infection(ctx.now(), ctx.addr());
                            ctx.set_timer(KEEPALIVE, TOKEN_KEEPALIVE);
                        }
                        self.c2 = Some((addr, port));
                        self.dial_c2(ctx);
                        self.reply(ctx, conn, "INSTALLED");
                    } else {
                        self.reply(ctx, conn, "ERROR");
                    }
                } else {
                    self.reply(ctx, conn, "ERROR");
                }
            }
        }
    }

    fn handle_c2_line(&mut self, ctx: &mut Ctx<'_>, line: &str) {
        match line.parse::<C2Command>() {
            Ok(C2Command::Attack(order)) => {
                let ends_at = ctx.now() + SimDuration::from_secs(order.duration_secs as u64);
                self.attack = Some(ActiveAttack { order, ends_at, carry: 0.0 });
                if !self.tick_armed {
                    self.tick_armed = true;
                    ctx.set_timer(FLOOD_TICK, TOKEN_FLOOD_TICK);
                }
            }
            Ok(C2Command::Stop) => {
                self.attack = None;
            }
            Err(_) => {}
        }
    }

    fn flood_tick(&mut self, ctx: &mut Ctx<'_>) {
        let Some(attack) = &mut self.attack else {
            self.tick_armed = false;
            self.teardown_http_flood(ctx);
            return;
        };
        if ctx.now() >= attack.ends_at {
            self.attack = None;
            self.tick_armed = false;
            self.teardown_http_flood(ctx);
            return;
        }
        if attack.order.vector.is_application_level() {
            self.http_flood_tick(ctx);
            return;
        }
        // Emit pps * tick worth of packets, carrying the fraction over.
        let budget = attack.order.pps as f64 * FLOOD_TICK.as_secs_f64() + attack.carry;
        let count = budget as u64;
        attack.carry = budget - count as f64;
        let order = attack.order;
        let src = ctx.addr();
        let mut sent = 0;
        for _ in 0..count {
            let packet = flood_packet(
                order.vector,
                src,
                order.target,
                order.port,
                &self.flood_config,
                &mut self.rng,
            );
            if ctx.send_raw(packet).is_ok() {
                sent += 1;
            }
        }
        self.stats.add_flood_packets(sent);
        ctx.set_timer(FLOOD_TICK, TOKEN_FLOOD_TICK);
    }

    /// One tick of the application-level HTTP flood: keep a small pool
    /// of real connections to the victim's web server and hammer GET
    /// requests over them (`pps` is interpreted as requests/second).
    fn http_flood_tick(&mut self, ctx: &mut Ctx<'_>) {
        let Some(attack) = &mut self.attack else { return };
        let order = attack.order;
        while self.http_conns.len() < HTTP_FLOOD_CONNS {
            let conn = ctx.tcp_connect(order.target, order.port);
            self.http_conns.push(conn);
        }
        let budget = order.pps as f64 * FLOOD_TICK.as_secs_f64() + attack.carry;
        let count = budget as u64;
        attack.carry = budget - count as f64;
        let mut sent = 0u64;
        for _ in 0..count {
            if self.http_conns.is_empty() {
                break;
            }
            self.http_rr = (self.http_rr + 1) % self.http_conns.len();
            let conn = self.http_conns[self.http_rr];
            let object = self.rng.below(200);
            let request = format!("GET /obj/{object} HTTP/1.1\r\nHost: victim\r\n\r\n");
            ctx.tcp_send(conn, request.as_bytes());
            sent += 1;
        }
        self.stats.add_flood_packets(sent);
        ctx.set_timer(FLOOD_TICK, TOKEN_FLOOD_TICK);
    }

    fn teardown_http_flood(&mut self, ctx: &mut Ctx<'_>) {
        for conn in std::mem::take(&mut self.http_conns) {
            ctx.tcp_close(conn);
        }
    }
}

impl App for DeviceAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert!(ctx.tcp_listen(TELNET_PORT, 8), "telnet port already bound");
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, local_port, .. } if local_port == TELNET_PORT => {
                self.sessions.insert(
                    conn,
                    TelnetSession {
                        buffer: LineBuffer::new(),
                        state: TelnetState::WaitUser,
                        user: String::new(),
                    },
                );
                self.reply(ctx, conn, "login:");
            }
            TcpEvent::Connected { conn } if Some(conn) == self.c2_conn => {
                self.reconnect_attempts = 0;
                let reg = format!("REG {}\r\n", ctx.addr());
                ctx.tcp_send(conn, reg.as_bytes());
            }
            TcpEvent::Data { conn, data } => {
                if Some(conn) == self.c2_conn {
                    self.c2_buffer.push(&data);
                    let mut lines = Vec::new();
                    while let Some(line) = self.c2_buffer.next_line() {
                        lines.push(line);
                    }
                    for line in lines {
                        self.handle_c2_line(ctx, &line);
                    }
                } else if self.sessions.contains_key(&conn) {
                    let mut lines = Vec::new();
                    if let Some(session) = self.sessions.get_mut(&conn) {
                        session.buffer.push(&data);
                        while let Some(line) = session.buffer.next_line() {
                            lines.push(line);
                        }
                    }
                    for line in lines {
                        self.handle_telnet_line(ctx, conn, line);
                    }
                }
            }
            TcpEvent::PeerClosed { conn }
                if self.sessions.contains_key(&conn) => {
                    ctx.tcp_close(conn);
                }
            TcpEvent::Closed { conn } | TcpEvent::ConnectFailed { conn } => {
                self.sessions.remove(&conn);
                self.http_conns.retain(|&c| c != conn);
                if Some(conn) == self.c2_conn {
                    self.c2_conn = None;
                    self.c2_buffer = LineBuffer::new();
                    if self.infected {
                        self.schedule_reconnect(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_FLOOD_TICK => self.flood_tick(ctx),
            TOKEN_KEEPALIVE => {
                if let Some(conn) = self.c2_conn {
                    ctx.tcp_send(conn, b"PING\r\n");
                }
                if self.infected {
                    ctx.set_timer(KEEPALIVE, TOKEN_KEEPALIVE);
                }
            }
            TOKEN_RECONNECT
                if self.infected && ctx.is_up() => {
                    self.dial_c2(ctx);
                }
            _ => {}
        }
    }

    fn on_link_state(&mut self, _ctx: &mut Ctx<'_>, up: bool) {
        if !up {
            // Power loss. Mirai is memory-resident and does not persist
            // across reboots (Antonakakis et al.): the infection, the C2
            // coordinates and any running flood all evaporate with RAM.
            // The device boots clean, scannable and re-crackable; only
            // the attacker's scanner can bring it back into the botnet.
            self.sessions.clear();
            self.infected = false;
            self.c2 = None;
            self.c2_conn = None;
            self.c2_buffer = LineBuffer::new();
            self.attack = None;
            self.tick_armed = false;
            self.http_conns.clear();
            self.reconnect_attempts = 0;
        }
    }
}
