//! The attacker container: Mirai's scanner, loader and command-and-
//! control server in one application (matching the paper's Attacker
//! component with its C2 subcomponent).
//!
//! The scanner probes random addresses on the LAN for telnet, runs the
//! factory-default credential dictionary against responders, and on
//! success "loads the malware" by issuing `INSTALL <c2> <port>` in the
//! shell. Bots dial back to the embedded C2 server, which broadcasts the
//! scheduled attack orders.

use std::collections::HashMap;

use netsim::packet::Addr;
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx};
use netsim::{ConnId, TcpEvent};

use crate::commands::{C2Command, C2_PORT, MIRAI_DICTIONARY, TELNET_PORT};
use crate::line::LineBuffer;
use crate::stats::BotnetStats;

const TOKEN_SCAN: u64 = 1;
/// Schedule entries use tokens `TOKEN_SCHEDULE_BASE + index`.
const TOKEN_SCHEDULE_BASE: u64 = 1_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbePhase {
    Connecting,
    WaitLogin,
    WaitPassPrompt,
    WaitResult,
    WaitInstalled,
}

#[derive(Debug)]
struct Probe {
    target: Addr,
    cred_idx: usize,
    phase: ProbePhase,
    buffer: LineBuffer,
}

/// Configuration of the attacker's behaviour.
#[derive(Debug, Clone)]
pub struct AttackerConfig {
    /// Mean pause between scan probes (seconds).
    pub scan_interval_mean: f64,
    /// Host-index range `[lo, hi)` scanned within `10.0.x.y` (indices
    /// above the populated range model probes into empty space).
    pub scan_hosts: (u32, u32),
    /// The attack schedule: absolute fire times and the orders to
    /// broadcast.
    pub schedule: Vec<(SimTime, C2Command)>,
}

impl Default for AttackerConfig {
    fn default() -> Self {
        AttackerConfig { scan_interval_mean: 0.25, scan_hosts: (2, 64), schedule: Vec::new() }
    }
}

/// The Mirai attacker: scanner + loader + C2 server.
#[derive(Debug)]
pub struct Attacker {
    config: AttackerConfig,
    stats: BotnetStats,
    rng: SimRng,
    probes: HashMap<ConnId, Probe>,
    bots: HashMap<ConnId, Addr>,
    bot_buffers: HashMap<ConnId, LineBuffer>,
    infected_targets: Vec<Addr>,
}

impl Attacker {
    /// Creates an attacker with the given behaviour.
    pub fn new(config: AttackerConfig, stats: BotnetStats, rng: SimRng) -> Self {
        Attacker {
            config,
            stats,
            rng,
            probes: HashMap::new(),
            bots: HashMap::new(),
            bot_buffers: HashMap::new(),
            infected_targets: Vec::new(),
        }
    }

    fn schedule_scan(&mut self, ctx: &mut Ctx<'_>) {
        let delay = SimDuration::from_secs_f64(self.rng.exponential(self.config.scan_interval_mean));
        ctx.set_timer(delay, TOKEN_SCAN);
    }

    fn launch_probe(&mut self, ctx: &mut Ctx<'_>, target: Addr, cred_idx: usize) {
        self.stats.add_scan_probe();
        let conn = ctx.tcp_connect(target, TELNET_PORT);
        self.probes.insert(
            conn,
            Probe { target, cred_idx, phase: ProbePhase::Connecting, buffer: LineBuffer::new() },
        );
    }

    fn scan_tick(&mut self, ctx: &mut Ctx<'_>) {
        let (lo, hi) = self.config.scan_hosts;
        let host = self.rng.int_range(lo as u64, hi.saturating_sub(1).max(lo) as u64) as u32;
        let target = Addr::new(10, 0, (host >> 8) as u8, (host & 0xff) as u8);
        if target != ctx.addr() && !self.infected_targets.contains(&target) {
            self.launch_probe(ctx, target, 0);
        }
        self.schedule_scan(ctx);
    }

    fn handle_probe_line(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: &str) {
        let Some((phase, target, cred_idx)) =
            self.probes.get(&conn).map(|p| (p.phase, p.target, p.cred_idx))
        else {
            return;
        };
        let (user, pass) = MIRAI_DICTIONARY[cred_idx % MIRAI_DICTIONARY.len()];
        let set_phase = |probes: &mut HashMap<ConnId, Probe>, phase| {
            if let Some(p) = probes.get_mut(&conn) {
                p.phase = phase;
            }
        };
        match (phase, line) {
            (ProbePhase::Connecting | ProbePhase::WaitLogin, "login:") => {
                set_phase(&mut self.probes, ProbePhase::WaitPassPrompt);
                ctx.tcp_send(conn, format!("{user}\r\n").as_bytes());
            }
            (ProbePhase::WaitPassPrompt, "Password:") => {
                set_phase(&mut self.probes, ProbePhase::WaitResult);
                ctx.tcp_send(conn, format!("{pass}\r\n").as_bytes());
            }
            (ProbePhase::WaitResult, "SHELL") => {
                set_phase(&mut self.probes, ProbePhase::WaitInstalled);
                let install = format!("INSTALL {} {}\r\n", ctx.addr(), C2_PORT);
                ctx.tcp_send(conn, install.as_bytes());
            }
            (ProbePhase::WaitResult, "DENIED") => {
                // The device closes; retry with the next credential pair.
                self.probes.remove(&conn);
                let next = cred_idx + 1;
                if next < MIRAI_DICTIONARY.len() {
                    self.launch_probe(ctx, target, next);
                }
            }
            (ProbePhase::WaitInstalled, "INSTALLED") => {
                self.probes.remove(&conn);
                if !self.infected_targets.contains(&target) {
                    self.infected_targets.push(target);
                }
                ctx.tcp_close(conn);
            }
            _ => {}
        }
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_>, command: &C2Command) {
        let line = format!("{command}\r\n");
        let mut conns: Vec<ConnId> = self.bots.keys().copied().collect();
        conns.sort_unstable();
        for conn in conns {
            ctx.tcp_send(conn, line.as_bytes());
        }
        if matches!(command, C2Command::Attack(_)) {
            self.stats.add_attack_started();
        }
    }

    /// Addresses of devices the loader successfully installed onto.
    pub fn infected_targets(&self) -> &[Addr] {
        &self.infected_targets
    }

    /// Distinct bot addresses currently connected (a churned-out bot may
    /// briefly have both a stale and a fresh session; count it once).
    fn distinct_bots(&self) -> u64 {
        let mut addrs: Vec<Addr> = self.bots.values().copied().collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len() as u64
    }
}

impl App for Attacker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert!(ctx.tcp_listen(C2_PORT, 256), "C2 port already bound");
        self.schedule_scan(ctx);
        let now = ctx.now();
        for (i, (at, _)) in self.config.schedule.iter().enumerate() {
            let delay = at.saturating_since(now);
            ctx.set_timer(delay, TOKEN_SCHEDULE_BASE + i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_SCAN {
            self.scan_tick(ctx);
        } else if token >= TOKEN_SCHEDULE_BASE {
            let idx = (token - TOKEN_SCHEDULE_BASE) as usize;
            if let Some((_, command)) = self.config.schedule.get(idx).copied() {
                self.broadcast(ctx, &command);
            }
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, local_port, .. } if local_port == C2_PORT => {
                self.bot_buffers.insert(conn, LineBuffer::new());
            }
            TcpEvent::Connected { conn } => {
                if let Some(probe) = self.probes.get_mut(&conn) {
                    probe.phase = ProbePhase::WaitLogin;
                }
            }
            TcpEvent::Data { conn, data } => {
                if self.probes.contains_key(&conn) {
                    let mut lines = Vec::new();
                    if let Some(probe) = self.probes.get_mut(&conn) {
                        probe.buffer.push(&data);
                        while let Some(line) = probe.buffer.next_line() {
                            lines.push(line);
                        }
                    }
                    for line in lines {
                        self.handle_probe_line(ctx, conn, &line);
                    }
                } else if self.bot_buffers.contains_key(&conn) {
                    let mut lines = Vec::new();
                    if let Some(buffer) = self.bot_buffers.get_mut(&conn) {
                        buffer.push(&data);
                        while let Some(line) = buffer.next_line() {
                            lines.push(line);
                        }
                    }
                    for line in lines {
                        if let Some(addr) = line.strip_prefix("REG ") {
                            if let Some(addr) = crate::commands::parse_addr(addr.trim()) {
                                self.bots.insert(conn, addr);
                                self.stats.set_connected_bots(self.distinct_bots());
                            }
                        }
                        // PING keepalives need no reply.
                    }
                }
            }
            TcpEvent::PeerClosed { conn }
                if (self.bot_buffers.contains_key(&conn) || self.probes.contains_key(&conn)) => {
                    ctx.tcp_close(conn);
                }
            TcpEvent::Closed { conn } | TcpEvent::ConnectFailed { conn } => {
                self.probes.remove(&conn);
                self.bot_buffers.remove(&conn);
                if self.bots.remove(&conn).is_some() {
                    self.stats.set_connected_bots(self.distinct_bots());
                }
            }
            _ => {}
        }
    }
}
