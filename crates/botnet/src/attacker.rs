//! The attacker container: Mirai's scanner, loader and command-and-
//! control server in one application (matching the paper's Attacker
//! component with its C2 subcomponent).
//!
//! The scanner probes random addresses on the LAN for telnet, runs the
//! factory-default credential dictionary against responders, and on
//! success "loads the malware" by issuing `INSTALL <c2> <port>` in the
//! shell. Bots dial back to the embedded C2 server, which broadcasts the
//! scheduled attack orders.

use std::collections::HashMap;

use netsim::packet::Addr;
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx};
use netsim::{ConnId, TcpEvent};

use crate::commands::{C2Command, C2_HEARTBEAT_TIMEOUT, C2_PORT, MIRAI_DICTIONARY, TELNET_PORT};
use crate::line::LineBuffer;
use crate::stats::BotnetStats;

const TOKEN_SCAN: u64 = 1;
const TOKEN_EVICT: u64 = 2;
/// Schedule entries use tokens `TOKEN_SCHEDULE_BASE + index`.
const TOKEN_SCHEDULE_BASE: u64 = 1_000;

/// How often the C2 sweeps bot sessions for missed heartbeats.
const EVICT_PERIOD: SimDuration = SimDuration::from_secs(5);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbePhase {
    Connecting,
    WaitLogin,
    WaitPassPrompt,
    WaitResult,
    WaitInstalled,
}

#[derive(Debug)]
struct Probe {
    target: Addr,
    cred_idx: usize,
    phase: ProbePhase,
    buffer: LineBuffer,
}

/// Configuration of the attacker's behaviour.
#[derive(Debug, Clone)]
pub struct AttackerConfig {
    /// Mean pause between scan probes (seconds).
    pub scan_interval_mean: f64,
    /// Host-index range `[lo, hi)` scanned within `10.0.x.y` (indices
    /// above the populated range model probes into empty space).
    pub scan_hosts: (u32, u32),
    /// The attack schedule: absolute fire times and the orders to
    /// broadcast.
    pub schedule: Vec<(SimTime, C2Command)>,
}

impl Default for AttackerConfig {
    fn default() -> Self {
        AttackerConfig { scan_interval_mean: 0.25, scan_hosts: (2, 64), schedule: Vec::new() }
    }
}

/// One registered bot session on the C2 channel.
#[derive(Debug, Clone, Copy)]
struct BotSession {
    addr: Addr,
    /// Last time the C2 heard anything (REG or PING) on this connection.
    last_seen: SimTime,
}

/// The Mirai attacker: scanner + loader + C2 server.
#[derive(Debug)]
pub struct Attacker {
    config: AttackerConfig,
    stats: BotnetStats,
    rng: SimRng,
    probes: HashMap<ConnId, Probe>,
    bots: HashMap<ConnId, BotSession>,
    bot_buffers: HashMap<ConnId, LineBuffer>,
    infected_targets: Vec<Addr>,
    /// When each evicted device was lost, for time-to-reinfection
    /// accounting (cleared when the scanner re-compromises it).
    lost_at: HashMap<Addr, SimTime>,
}

impl Attacker {
    /// Creates an attacker with the given behaviour.
    pub fn new(config: AttackerConfig, stats: BotnetStats, rng: SimRng) -> Self {
        Attacker {
            config,
            stats,
            rng,
            probes: HashMap::new(),
            bots: HashMap::new(),
            bot_buffers: HashMap::new(),
            infected_targets: Vec::new(),
            lost_at: HashMap::new(),
        }
    }

    fn schedule_scan(&mut self, ctx: &mut Ctx<'_>) {
        let delay = SimDuration::from_secs_f64(self.rng.exponential(self.config.scan_interval_mean));
        ctx.set_timer(delay, TOKEN_SCAN);
    }

    fn launch_probe(&mut self, ctx: &mut Ctx<'_>, target: Addr, cred_idx: usize) {
        self.stats.add_scan_probe();
        let conn = ctx.tcp_connect(target, TELNET_PORT);
        self.probes.insert(
            conn,
            Probe { target, cred_idx, phase: ProbePhase::Connecting, buffer: LineBuffer::new() },
        );
    }

    fn scan_tick(&mut self, ctx: &mut Ctx<'_>) {
        let (lo, hi) = self.config.scan_hosts;
        let host = self.rng.int_range(lo as u64, hi.saturating_sub(1).max(lo) as u64) as u32;
        let target = Addr::new(10, 0, (host >> 8) as u8, (host & 0xff) as u8);
        if target != ctx.addr() && !self.infected_targets.contains(&target) {
            self.launch_probe(ctx, target, 0);
        }
        self.schedule_scan(ctx);
    }

    fn handle_probe_line(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: &str) {
        let Some((phase, target, cred_idx)) =
            self.probes.get(&conn).map(|p| (p.phase, p.target, p.cred_idx))
        else {
            return;
        };
        let (user, pass) = MIRAI_DICTIONARY[cred_idx % MIRAI_DICTIONARY.len()];
        let set_phase = |probes: &mut HashMap<ConnId, Probe>, phase| {
            if let Some(p) = probes.get_mut(&conn) {
                p.phase = phase;
            }
        };
        match (phase, line) {
            (ProbePhase::Connecting | ProbePhase::WaitLogin, "login:") => {
                set_phase(&mut self.probes, ProbePhase::WaitPassPrompt);
                ctx.tcp_send(conn, format!("{user}\r\n").as_bytes());
            }
            (ProbePhase::WaitPassPrompt, "Password:") => {
                set_phase(&mut self.probes, ProbePhase::WaitResult);
                ctx.tcp_send(conn, format!("{pass}\r\n").as_bytes());
            }
            (ProbePhase::WaitResult, "SHELL") => {
                set_phase(&mut self.probes, ProbePhase::WaitInstalled);
                let install = format!("INSTALL {} {}\r\n", ctx.addr(), C2_PORT);
                ctx.tcp_send(conn, install.as_bytes());
            }
            (ProbePhase::WaitResult, "DENIED") => {
                // The device closes; retry with the next credential pair.
                self.probes.remove(&conn);
                let next = cred_idx + 1;
                if next < MIRAI_DICTIONARY.len() {
                    self.launch_probe(ctx, target, next);
                }
            }
            (ProbePhase::WaitInstalled, "INSTALLED") => {
                self.probes.remove(&conn);
                if !self.infected_targets.contains(&target) {
                    self.infected_targets.push(target);
                }
                if let Some(lost) = self.lost_at.remove(&target) {
                    // An evicted device is back in the botnet: record how
                    // long the scan → credential → install cycle took.
                    self.stats.add_reinfection(ctx.now(), target, ctx.now() - lost);
                }
                ctx.tcp_close(conn);
            }
            _ => {}
        }
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_>, command: &C2Command) {
        let line = format!("{command}\r\n");
        let mut conns: Vec<ConnId> = self.bots.keys().copied().collect();
        conns.sort_unstable();
        for conn in conns {
            ctx.tcp_send(conn, line.as_bytes());
        }
        if matches!(command, C2Command::Attack(_)) {
            self.stats.add_attack_started(ctx.now(), self.distinct_bots());
        }
    }

    /// Addresses of devices the loader currently believes are infected.
    /// A device evicted for missed heartbeats leaves this set and
    /// becomes scannable again, so the set tracks the *live* botnet
    /// rather than growing monotonically.
    pub fn infected_targets(&self) -> &[Addr] {
        &self.infected_targets
    }

    /// Distinct bot addresses currently connected (a churned-out bot may
    /// briefly have both a stale and a fresh session; count it once).
    fn distinct_bots(&self) -> u64 {
        let mut addrs: Vec<Addr> = self.bots.values().map(|s| s.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len() as u64
    }

    /// Drops a bot session. If no other live session carries the same
    /// device address, the device itself is deemed lost: it becomes
    /// scannable again and the loss instant is recorded so a later
    /// re-install yields a time-to-reinfection sample.
    fn drop_bot_session(&mut self, now: SimTime, conn: ConnId) {
        let Some(session) = self.bots.remove(&conn) else { return };
        let addr_still_live = self.bots.values().any(|s| s.addr == session.addr);
        if !addr_still_live {
            self.infected_targets.retain(|&a| a != session.addr);
            self.lost_at.entry(session.addr).or_insert(now);
            self.stats.add_bot_evicted(now, session.addr);
        }
        self.stats.set_connected_bots(self.distinct_bots());
    }

    /// Sweeps bot sessions for missed heartbeats and aborts the dead
    /// ones. An idle TCP connection to a powered-off peer emits no
    /// segments, so silence — not a reset — is the only signal the C2
    /// gets that a device rebooted out of the botnet.
    fn evict_stale_bots(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut stale: Vec<ConnId> = self
            .bots
            .iter()
            .filter(|(_, s)| now - s.last_seen > C2_HEARTBEAT_TIMEOUT)
            .map(|(&c, _)| c)
            .collect();
        stale.sort_unstable();
        for conn in stale {
            ctx.tcp_abort(conn);
            self.bot_buffers.remove(&conn);
            self.drop_bot_session(now, conn);
        }
        ctx.set_timer(EVICT_PERIOD, TOKEN_EVICT);
    }
}

impl App for Attacker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert!(ctx.tcp_listen(C2_PORT, 256), "C2 port already bound");
        self.schedule_scan(ctx);
        ctx.set_timer(EVICT_PERIOD, TOKEN_EVICT);
        let now = ctx.now();
        for (i, (at, _)) in self.config.schedule.iter().enumerate() {
            let delay = at.saturating_since(now);
            ctx.set_timer(delay, TOKEN_SCHEDULE_BASE + i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_SCAN {
            self.scan_tick(ctx);
        } else if token == TOKEN_EVICT {
            self.evict_stale_bots(ctx);
        } else if token >= TOKEN_SCHEDULE_BASE {
            let idx = (token - TOKEN_SCHEDULE_BASE) as usize;
            if let Some((_, command)) = self.config.schedule.get(idx).copied() {
                self.broadcast(ctx, &command);
            }
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, local_port, .. } if local_port == C2_PORT => {
                self.bot_buffers.insert(conn, LineBuffer::new());
            }
            TcpEvent::Connected { conn } => {
                if let Some(probe) = self.probes.get_mut(&conn) {
                    probe.phase = ProbePhase::WaitLogin;
                }
            }
            TcpEvent::Data { conn, data } => {
                if self.probes.contains_key(&conn) {
                    let mut lines = Vec::new();
                    if let Some(probe) = self.probes.get_mut(&conn) {
                        probe.buffer.push(&data);
                        while let Some(line) = probe.buffer.next_line() {
                            lines.push(line);
                        }
                    }
                    for line in lines {
                        self.handle_probe_line(ctx, conn, &line);
                    }
                } else if self.bot_buffers.contains_key(&conn) {
                    let mut lines = Vec::new();
                    if let Some(buffer) = self.bot_buffers.get_mut(&conn) {
                        buffer.push(&data);
                        while let Some(line) = buffer.next_line() {
                            lines.push(line);
                        }
                    }
                    for line in lines {
                        if let Some(addr) = line.strip_prefix("REG ") {
                            if let Some(addr) = crate::commands::parse_addr(addr.trim()) {
                                self.bots
                                    .insert(conn, BotSession { addr, last_seen: ctx.now() });
                                self.stats.set_connected_bots(self.distinct_bots());
                            }
                        } else if let Some(session) = self.bots.get_mut(&conn) {
                            // PING keepalives need no reply, but they
                            // refresh the session's liveness clock.
                            session.last_seen = ctx.now();
                        }
                    }
                }
            }
            TcpEvent::PeerClosed { conn }
                if (self.bot_buffers.contains_key(&conn) || self.probes.contains_key(&conn)) => {
                    ctx.tcp_close(conn);
                }
            TcpEvent::Closed { conn } | TcpEvent::ConnectFailed { conn } => {
                self.probes.remove(&conn);
                self.bot_buffers.remove(&conn);
                self.drop_bot_session(ctx.now(), conn);
            }
            _ => {}
        }
    }
}
