//! Deployment helpers wiring the botnet components into containers.

use netsim::packet::Provenance;
use netsim::rng::SimRng;
use netsim::time::SimTime;
use netsim::AppId;

use containers::runtime::{ContainerId, Runtime};

use crate::attacker::{Attacker, AttackerConfig};
use crate::commands::MIRAI_DICTIONARY;
use crate::device::DeviceAgent;
use crate::flood::FloodConfig;
use crate::stats::BotnetStats;

/// Installs the Mirai attacker (scanner + loader + C2) into a container.
///
/// All traffic the attacker originates is stamped malicious.
pub fn install_attacker(
    rt: &mut Runtime,
    container: ContainerId,
    config: AttackerConfig,
    stats: BotnetStats,
    rng: SimRng,
    start_at: SimTime,
) -> AppId {
    rt.install(
        container,
        Box::new(Attacker::new(config, stats, rng)),
        Provenance::Malicious,
        start_at,
    )
}

/// Installs a [`DeviceAgent`] into each device container.
///
/// A `vulnerable_fraction` of the devices (rounded up, chosen in order)
/// get factory-default credentials from the Mirai dictionary and are
/// therefore crackable; the rest get strong credentials. Returns the app
/// ids in device order.
pub fn install_device_agents(
    rt: &mut Runtime,
    devices: &[ContainerId],
    vulnerable_fraction: f64,
    flood_config: FloodConfig,
    stats: &BotnetStats,
    rng: &mut SimRng,
    start_at: SimTime,
) -> Vec<AppId> {
    let vulnerable = ((devices.len() as f64 * vulnerable_fraction).ceil() as usize).min(devices.len());
    devices
        .iter()
        .enumerate()
        .map(|(i, &device)| {
            let (user, pass) = if i < vulnerable {
                let pair = MIRAI_DICTIONARY[i % MIRAI_DICTIONARY.len()];
                (pair.0.to_owned(), pair.1.to_owned())
            } else {
                ("admin".to_owned(), format!("Str0ng!-{i}-{}", rng.next_u64()))
            };
            let agent = DeviceAgent::new(user, pass, flood_config, stats.clone(), rng.fork());
            rt.install(device, Box::new(agent), Provenance::Malicious, start_at)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{AttackOrder, AttackVector, C2Command};
    use containers::runtime::{ContainerSpec, Role};
    use netsim::link::LinkConfig;
    use netsim::time::SimDuration;

    /// Full life-cycle: scan → crack → install → dial home → flood.
    #[test]
    fn mirai_lifecycle_end_to_end() {
        let mut rt = Runtime::new(99, LinkConfig::lan_100mbps());
        let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
        let attacker = rt.deploy(ContainerSpec::new("attacker", Role::Attacker));
        let devices: Vec<ContainerId> = (0..8)
            .map(|i| rt.deploy(ContainerSpec::new(format!("dev-{i}"), Role::Device)))
            .collect();
        let tserver_addr = rt.addr(tserver);

        let stats = BotnetStats::new();
        let mut rng = SimRng::seed_from(1);
        install_device_agents(
            &mut rt,
            &devices,
            0.75,
            FloodConfig::default(),
            &stats,
            &mut rng,
            SimTime::ZERO,
        );
        let order = AttackOrder {
            vector: AttackVector::SynFlood,
            target: tserver_addr,
            port: 80,
            duration_secs: 5,
            pps: 200,
        };
        let config = AttackerConfig {
            scan_interval_mean: 0.05,
            scan_hosts: (2, 16),
            schedule: vec![(SimTime::from_secs(30), C2Command::Attack(order))],
        };
        install_attacker(&mut rt, attacker, config, stats.clone(), rng.fork(), SimTime::ZERO);

        // Infection phase.
        rt.run_for(SimDuration::from_secs(30));
        let snap = stats.snapshot();
        assert!(snap.scan_probes > 50, "probes {}", snap.scan_probes);
        assert!(snap.login_attempts > snap.logins_ok, "some creds are wrong");
        assert_eq!(snap.infections, 6, "ceil(8 * 0.75) devices crackable");
        assert_eq!(snap.connected_bots, 6, "all infected devices dialled home");

        // Attack phase.
        rt.run_for(SimDuration::from_secs(10));
        let snap = stats.snapshot();
        assert_eq!(snap.attacks_started, 1);
        assert!(
            snap.flood_packets > 3_000,
            "6 bots x 200 pps x 5 s ~ 6000 packets, got {}",
            snap.flood_packets
        );
        // The victim actually received the flood.
        let victim = rt.node(tserver);
        assert!(rt.world().node_stats(victim).recv_packets > 3_000);
    }

    /// A SYN flood saturates the victim's listener backlog so legitimate
    /// connections start getting dropped (the DDoS "works").
    #[test]
    fn syn_flood_exhausts_listener_backlog() {
        let mut rt = Runtime::new(7, LinkConfig::lan_100mbps());
        let tserver = rt.deploy(ContainerSpec::new("tserver", Role::TServer));
        let attacker = rt.deploy(ContainerSpec::new("attacker", Role::Attacker));
        let devices: Vec<ContainerId> = (0..4)
            .map(|i| rt.deploy(ContainerSpec::new(format!("dev-{i}"), Role::Device)))
            .collect();
        let tserver_addr = rt.addr(tserver);

        // A bare TCP listener stands in for the web server.
        struct BareListener;
        impl netsim::world::App for BareListener {
            fn on_start(&mut self, ctx: &mut netsim::world::Ctx<'_>) {
                ctx.tcp_listen(80, 16);
            }
            // Never answers, so half-open entries only clear via timeout.
        }
        rt.install(tserver, Box::new(BareListener), Provenance::Benign, SimTime::ZERO);

        let stats = BotnetStats::new();
        let mut rng = SimRng::seed_from(2);
        install_device_agents(
            &mut rt,
            &devices,
            1.0,
            crate::flood::FloodConfig { spoof_sources: true, ..Default::default() },
            &stats,
            &mut rng,
            SimTime::ZERO,
        );
        let order = AttackOrder {
            vector: AttackVector::SynFlood,
            target: tserver_addr,
            port: 80,
            duration_secs: 10,
            pps: 500,
        };
        let config = AttackerConfig {
            scan_interval_mean: 0.05,
            scan_hosts: (2, 8),
            schedule: vec![(SimTime::from_secs(20), C2Command::Attack(order))],
        };
        install_attacker(&mut rt, attacker, config, stats.clone(), rng.fork(), SimTime::ZERO);

        rt.run_for(SimDuration::from_secs(25));
        let victim = rt.node(tserver);
        let (half_open, syn_drops) =
            rt.world().listener_pressure(victim, 80).expect("listener exists");
        assert!(half_open > 0 || syn_drops > 0, "backlog under pressure");
        rt.run_for(SimDuration::from_secs(5));
        let (_, syn_drops) = rt.world().listener_pressure(victim, 80).expect("listener exists");
        assert!(syn_drops > 100, "sustained flood overflows the backlog: {syn_drops}");
    }
}
