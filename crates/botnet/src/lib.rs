//! # botnet — a Mirai-style botnet life-cycle implementation
//!
//! The malicious half of the DDoShield-IoT dataset. The [`attacker`]
//! module implements Mirai's scanner (random telnet probing), loader
//! (dictionary attack + `INSTALL`) and C2 server; [`device`] implements
//! the vulnerable device binary and the bot it becomes; [`flood`] builds
//! the three attack vectors the paper evaluates (SYN, ACK and UDP
//! floods); [`commands`] defines the C2 wire protocol.
//!
//! All botnet traffic — scanning, credential attacks, C2 chatter and
//! floods — is stamped [`netsim::packet::Provenance::Malicious`], which
//! is how captures acquire ground-truth labels.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attacker;
pub mod commands;
pub mod deploy;
pub mod device;
pub mod flood;
pub mod stats;

mod line;

pub use attacker::{Attacker, AttackerConfig};
pub use commands::{AttackOrder, AttackVector, C2Command, C2_PORT, MIRAI_DICTIONARY, TELNET_PORT};
pub use deploy::{install_attacker, install_device_agents};
pub use device::DeviceAgent;
pub use flood::{FloodConfig, UDP_FLOOD_PAYLOAD};
pub use stats::{BotnetCounters, BotnetStats};
