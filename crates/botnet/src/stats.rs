//! Shared observability handles for the botnet life-cycle.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::time::SimDuration;

/// A point-in-time view of botnet progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BotnetCounters {
    /// Telnet probes the scanner launched (including to empty addresses).
    pub scan_probes: u64,
    /// Credential pairs tried.
    pub login_attempts: u64,
    /// Successful logins.
    pub logins_ok: u64,
    /// Infection events. A device rebooted out of the botnet and then
    /// re-compromised counts again (each is a fresh memory-resident
    /// infection), so this can exceed the number of distinct devices.
    pub infections: u64,
    /// Bots currently connected to the C2 (gauge).
    pub connected_bots: u64,
    /// Attack orders broadcast by the C2.
    pub attacks_started: u64,
    /// Flood packets emitted by all bots.
    pub flood_packets: u64,
    /// Bots the C2 evicted for missed heartbeats or dead connections.
    pub bots_evicted: u64,
    /// Evicted devices the scanner re-compromised.
    pub reinfections: u64,
    /// Total eviction-to-reinfection latency across all reinfections,
    /// in nanoseconds (divide by `reinfections` for the mean).
    pub reinfection_latency_total_nanos: u64,
}

impl BotnetCounters {
    /// Mean time from bot eviction to re-infection, or `None` if no
    /// device has been reinfected yet.
    pub fn mean_reinfection_latency(&self) -> Option<SimDuration> {
        if self.reinfections == 0 {
            return None;
        }
        Some(SimDuration::from_nanos(self.reinfection_latency_total_nanos / self.reinfections))
    }
}

/// A shared handle onto the botnet counters.
#[derive(Debug, Clone, Default)]
pub struct BotnetStats {
    inner: Rc<RefCell<BotnetCounters>>,
}

impl BotnetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the counters.
    pub fn snapshot(&self) -> BotnetCounters {
        *self.inner.borrow()
    }

    /// Records a scan probe.
    pub fn add_scan_probe(&self) {
        self.inner.borrow_mut().scan_probes += 1;
    }

    /// Records a credential attempt.
    pub fn add_login_attempt(&self) {
        self.inner.borrow_mut().login_attempts += 1;
    }

    /// Records a successful login.
    pub fn add_login_ok(&self) {
        self.inner.borrow_mut().logins_ok += 1;
    }

    /// Records a device infection.
    pub fn add_infection(&self) {
        self.inner.borrow_mut().infections += 1;
    }

    /// Updates the connected-bots gauge.
    pub fn set_connected_bots(&self, n: u64) {
        self.inner.borrow_mut().connected_bots = n;
    }

    /// Records a broadcast attack order.
    pub fn add_attack_started(&self) {
        self.inner.borrow_mut().attacks_started += 1;
    }

    /// Records emitted flood packets.
    pub fn add_flood_packets(&self, n: u64) {
        self.inner.borrow_mut().flood_packets += n;
    }

    /// Records a bot evicted by the C2 (missed heartbeats or a dead
    /// connection with no other live session from the same device).
    pub fn add_bot_evicted(&self) {
        self.inner.borrow_mut().bots_evicted += 1;
    }

    /// Records a re-infection of a previously evicted device, with the
    /// eviction-to-reinfection latency.
    pub fn add_reinfection(&self, latency: SimDuration) {
        let mut inner = self.inner.borrow_mut();
        inner.reinfections += 1;
        inner.reinfection_latency_total_nanos += latency.as_nanos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_counters() {
        let a = BotnetStats::new();
        let b = a.clone();
        b.add_scan_probe();
        b.add_infection();
        b.set_connected_bots(3);
        b.add_flood_packets(100);
        let snap = a.snapshot();
        assert_eq!(snap.scan_probes, 1);
        assert_eq!(snap.infections, 1);
        assert_eq!(snap.connected_bots, 3);
        assert_eq!(snap.flood_packets, 100);
    }

    #[test]
    fn reinfection_latency_averages() {
        let stats = BotnetStats::new();
        assert_eq!(stats.snapshot().mean_reinfection_latency(), None);
        stats.add_bot_evicted();
        stats.add_reinfection(SimDuration::from_secs(10));
        stats.add_reinfection(SimDuration::from_secs(20));
        let snap = stats.snapshot();
        assert_eq!(snap.bots_evicted, 1);
        assert_eq!(snap.reinfections, 2);
        assert_eq!(snap.mean_reinfection_latency(), Some(SimDuration::from_secs(15)));
    }
}
