//! Shared observability handles for the botnet life-cycle.

use std::cell::RefCell;
use std::rc::Rc;

/// A point-in-time view of botnet progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BotnetCounters {
    /// Telnet probes the scanner launched (including to empty addresses).
    pub scan_probes: u64,
    /// Credential pairs tried.
    pub login_attempts: u64,
    /// Successful logins.
    pub logins_ok: u64,
    /// Devices infected (unique).
    pub infections: u64,
    /// Bots currently connected to the C2 (gauge).
    pub connected_bots: u64,
    /// Attack orders broadcast by the C2.
    pub attacks_started: u64,
    /// Flood packets emitted by all bots.
    pub flood_packets: u64,
}

/// A shared handle onto the botnet counters.
#[derive(Debug, Clone, Default)]
pub struct BotnetStats {
    inner: Rc<RefCell<BotnetCounters>>,
}

impl BotnetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the counters.
    pub fn snapshot(&self) -> BotnetCounters {
        *self.inner.borrow()
    }

    /// Records a scan probe.
    pub fn add_scan_probe(&self) {
        self.inner.borrow_mut().scan_probes += 1;
    }

    /// Records a credential attempt.
    pub fn add_login_attempt(&self) {
        self.inner.borrow_mut().login_attempts += 1;
    }

    /// Records a successful login.
    pub fn add_login_ok(&self) {
        self.inner.borrow_mut().logins_ok += 1;
    }

    /// Records a device infection.
    pub fn add_infection(&self) {
        self.inner.borrow_mut().infections += 1;
    }

    /// Updates the connected-bots gauge.
    pub fn set_connected_bots(&self, n: u64) {
        self.inner.borrow_mut().connected_bots = n;
    }

    /// Records a broadcast attack order.
    pub fn add_attack_started(&self) {
        self.inner.borrow_mut().attacks_started += 1;
    }

    /// Records emitted flood packets.
    pub fn add_flood_packets(&self, n: u64) {
        self.inner.borrow_mut().flood_packets += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_counters() {
        let a = BotnetStats::new();
        let b = a.clone();
        b.add_scan_probe();
        b.add_infection();
        b.set_connected_bots(3);
        b.add_flood_packets(100);
        let snap = a.snapshot();
        assert_eq!(snap.scan_probes, 1);
        assert_eq!(snap.infections, 1);
        assert_eq!(snap.connected_bots, 3);
        assert_eq!(snap.flood_packets, 100);
    }
}
