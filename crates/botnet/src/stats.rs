//! Shared observability handles for the botnet life-cycle.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::packet::Addr;
use netsim::time::{SimDuration, SimTime};
use obs::{pow2_bounds, Counter, Gauge, Histogram, Scope};

/// A point-in-time view of botnet progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BotnetCounters {
    /// Telnet probes the scanner launched (including to empty addresses).
    pub scan_probes: u64,
    /// Credential pairs tried.
    pub login_attempts: u64,
    /// Successful logins.
    pub logins_ok: u64,
    /// Infection events. A device rebooted out of the botnet and then
    /// re-compromised counts again (each is a fresh memory-resident
    /// infection), so this can exceed the number of distinct devices.
    pub infections: u64,
    /// Bots currently connected to the C2 (gauge).
    pub connected_bots: u64,
    /// Attack orders broadcast by the C2.
    pub attacks_started: u64,
    /// Flood packets emitted by all bots.
    pub flood_packets: u64,
    /// Bots the C2 evicted for missed heartbeats or dead connections.
    pub bots_evicted: u64,
    /// Evicted devices the scanner re-compromised.
    pub reinfections: u64,
    /// Total eviction-to-reinfection latency across all reinfections,
    /// in nanoseconds (divide by `reinfections` for the mean).
    pub reinfection_latency_total_nanos: u64,
}

impl BotnetCounters {
    /// Mean time from bot eviction to re-infection, or `None` if no
    /// device has been reinfected yet.
    pub fn mean_reinfection_latency(&self) -> Option<SimDuration> {
        if self.reinfections == 0 {
            return None;
        }
        Some(SimDuration::from_nanos(self.reinfection_latency_total_nanos / self.reinfections))
    }
}

/// Pre-resolved telemetry instruments mirroring [`BotnetCounters`], plus
/// trace events for the life-cycle transitions (infection, attack start,
/// eviction, reinfection) stamped with the simulation clock.
#[derive(Debug)]
struct BotnetObs {
    scope: Scope,
    scan_probes: Counter,
    login_attempts: Counter,
    logins_ok: Counter,
    infections: Counter,
    connected_bots: Gauge,
    connected_bots_peak: Gauge,
    attacks_started: Counter,
    flood_packets: Counter,
    bots_evicted: Counter,
    reinfections: Counter,
    reinfection_latency_ns: Histogram,
}

impl BotnetObs {
    fn new(scope: Scope) -> Self {
        // Eviction-to-reinfection latency: 1 ms up to ~1100 s.
        let latency_bounds = pow2_bounds(20, 40);
        BotnetObs {
            scan_probes: scope.counter("scan_probes"),
            login_attempts: scope.counter("login_attempts"),
            logins_ok: scope.counter("logins_ok"),
            infections: scope.counter("infections"),
            connected_bots: scope.gauge("connected_bots"),
            connected_bots_peak: scope.gauge("connected_bots_peak"),
            attacks_started: scope.counter("attacks_started"),
            flood_packets: scope.counter("flood_packets"),
            bots_evicted: scope.counter("bots_evicted"),
            reinfections: scope.counter("reinfections"),
            reinfection_latency_ns: scope.histogram("reinfection_latency_ns", &latency_bounds),
            scope,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BotnetCounters,
    obs: Option<BotnetObs>,
}

/// A shared handle onto the botnet counters.
#[derive(Debug, Clone, Default)]
pub struct BotnetStats {
    inner: Rc<RefCell<Inner>>,
}

impl BotnetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches telemetry: every counter update is mirrored into `scope`
    /// and life-cycle transitions emit sim-clock-stamped trace events.
    pub fn set_obs(&self, scope: Scope) {
        self.inner.borrow_mut().obs = Some(BotnetObs::new(scope));
    }

    /// A snapshot of the counters.
    pub fn snapshot(&self) -> BotnetCounters {
        self.inner.borrow().counters
    }

    /// Records a scan probe.
    pub fn add_scan_probe(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.scan_probes += 1;
        if let Some(obs) = &inner.obs {
            obs.scan_probes.inc();
        }
    }

    /// Records a credential attempt.
    pub fn add_login_attempt(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.login_attempts += 1;
        if let Some(obs) = &inner.obs {
            obs.login_attempts.inc();
        }
    }

    /// Records a successful login on device `dev` at sim time `at`.
    pub fn add_login_ok(&self, at: SimTime, dev: Addr) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.logins_ok += 1;
        if let Some(obs) = &inner.obs {
            obs.logins_ok.inc();
            obs.scope.event(at.as_nanos(), "login_ok", format!("dev={dev}"));
        }
    }

    /// Records an infection of device `dev` at sim time `at`.
    pub fn add_infection(&self, at: SimTime, dev: Addr) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.infections += 1;
        if let Some(obs) = &inner.obs {
            obs.infections.inc();
            obs.scope.event(at.as_nanos(), "infection", format!("dev={dev}"));
        }
    }

    /// Updates the connected-bots gauge.
    pub fn set_connected_bots(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.connected_bots = n;
        if let Some(obs) = &inner.obs {
            obs.connected_bots.set(n as i64);
            obs.connected_bots_peak.set_max(n as i64);
        }
    }

    /// Records an attack order broadcast at sim time `at` to `bots` bots.
    pub fn add_attack_started(&self, at: SimTime, bots: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.attacks_started += 1;
        if let Some(obs) = &inner.obs {
            obs.attacks_started.inc();
            obs.scope.event(at.as_nanos(), "attack_started", format!("bots={bots}"));
        }
    }

    /// Records emitted flood packets.
    pub fn add_flood_packets(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.flood_packets += n;
        if let Some(obs) = &inner.obs {
            obs.flood_packets.add(n);
        }
    }

    /// Records device `dev` evicted by the C2 at sim time `at` (missed
    /// heartbeats or a dead connection with no other live session).
    pub fn add_bot_evicted(&self, at: SimTime, dev: Addr) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.bots_evicted += 1;
        if let Some(obs) = &inner.obs {
            obs.bots_evicted.inc();
            obs.scope.event(at.as_nanos(), "bot_evicted", format!("dev={dev}"));
        }
    }

    /// Records a re-infection of previously evicted device `dev` at sim
    /// time `at`, with the eviction-to-reinfection latency.
    pub fn add_reinfection(&self, at: SimTime, dev: Addr, latency: SimDuration) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.reinfections += 1;
        inner.counters.reinfection_latency_total_nanos += latency.as_nanos();
        if let Some(obs) = &inner.obs {
            obs.reinfections.inc();
            obs.reinfection_latency_ns.observe(latency.as_nanos());
            obs.scope.event(
                at.as_nanos(),
                "reinfection",
                format!("dev={dev} latency_ns={}", latency.as_nanos()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEV: Addr = Addr::new(10, 0, 0, 9);

    #[test]
    fn handles_share_counters() {
        let a = BotnetStats::new();
        let b = a.clone();
        b.add_scan_probe();
        b.add_infection(SimTime::from_secs(1), DEV);
        b.set_connected_bots(3);
        b.add_flood_packets(100);
        let snap = a.snapshot();
        assert_eq!(snap.scan_probes, 1);
        assert_eq!(snap.infections, 1);
        assert_eq!(snap.connected_bots, 3);
        assert_eq!(snap.flood_packets, 100);
    }

    #[test]
    fn reinfection_latency_averages() {
        let stats = BotnetStats::new();
        assert_eq!(stats.snapshot().mean_reinfection_latency(), None);
        stats.add_bot_evicted(SimTime::from_secs(5), DEV);
        stats.add_reinfection(SimTime::from_secs(15), DEV, SimDuration::from_secs(10));
        stats.add_reinfection(SimTime::from_secs(25), DEV, SimDuration::from_secs(20));
        let snap = stats.snapshot();
        assert_eq!(snap.bots_evicted, 1);
        assert_eq!(snap.reinfections, 2);
        assert_eq!(snap.mean_reinfection_latency(), Some(SimDuration::from_secs(15)));
    }

    #[test]
    fn obs_mirrors_counters_and_traces_transitions() {
        let registry = obs::Registry::new();
        let stats = BotnetStats::new();
        stats.set_obs(registry.scope("botnet"));
        stats.add_scan_probe();
        stats.add_login_attempt();
        stats.add_login_ok(SimTime::from_secs(2), DEV);
        stats.add_infection(SimTime::from_secs(3), DEV);
        stats.set_connected_bots(4);
        stats.set_connected_bots(2);
        stats.add_attack_started(SimTime::from_secs(9), 2);
        stats.add_flood_packets(500);
        let telemetry = registry.snapshot();
        assert_eq!(telemetry.counter("botnet.infections"), Some(1));
        assert_eq!(telemetry.counter("botnet.flood_packets"), Some(500));
        assert_eq!(telemetry.gauge("botnet.connected_bots"), Some(2));
        assert_eq!(telemetry.gauge("botnet.connected_bots_peak"), Some(4));
        let infection =
            telemetry.events.iter().find(|e| e.name == "infection").expect("traced");
        assert_eq!(infection.at_nanos, SimTime::from_secs(3).as_nanos());
        assert_eq!(infection.detail, "dev=10.0.0.9");
        assert!(telemetry.events.iter().any(|e| e.name == "attack_started"));
    }
}
