// Minimal CRLF line splitter for the telnet-ish and C2 channels.
// (Private: the public framing helpers live in the traffic crate; the
// botnet deliberately has no dependency on the benign-traffic crate.)

#[derive(Debug, Default, Clone)]
pub(crate) struct LineBuffer {
    data: Vec<u8>,
}

impl LineBuffer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    pub(crate) fn next_line(&mut self) -> Option<String> {
        let pos = self.data.windows(2).position(|w| w == b"\r\n")?;
        let line = String::from_utf8_lossy(&self.data[..pos]).into_owned();
        self.data.drain(..pos + 2);
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_lines() {
        let mut b = LineBuffer::new();
        b.push(b"a\r\nb\r");
        assert_eq!(b.next_line().as_deref(), Some("a"));
        assert_eq!(b.next_line(), None);
        b.push(b"\n");
        assert_eq!(b.next_line().as_deref(), Some("b"));
    }
}
