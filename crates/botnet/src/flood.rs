//! Flood packet construction for the three Mirai attack vectors.
//!
//! Bots bypass their TCP stack entirely and emit raw packets, exactly as
//! Mirai's attack modules craft raw frames: SYNs with random sequence
//! numbers and source ports, stray ACKs, and UDP datagrams to random
//! destination ports. Source spoofing is optional (off by default, like
//! Mirai behind typical home NATs).

use bytes::Bytes;
use netsim::packet::{Addr, Packet, TcpFlags, TcpHeader};
use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

use crate::commands::AttackVector;

/// Size of the UDP flood payload in bytes (Mirai's default is 512).
pub const UDP_FLOOD_PAYLOAD: usize = 512;

/// Per-bot flood parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodConfig {
    /// Spoof random source addresses inside the given /16.
    pub spoof_sources: bool,
    /// Subnet base used when spoofing (hosts are randomised).
    pub spoof_base: Addr,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig { spoof_sources: false, spoof_base: Addr::new(10, 0, 0, 0) }
    }
}

/// Builds one flood packet of the given vector.
///
/// `src` is the bot's real address; the source may be rewritten when
/// spoofing is enabled. `target`/`port` come from the C2 order.
///
/// # Panics
///
/// Panics for [`AttackVector::HttpFlood`]: application-level floods ride
/// real TCP connections (driven by the bot's connection machinery in
/// `device::DeviceAgent`), not raw packets.
pub fn flood_packet(
    vector: AttackVector,
    src: Addr,
    target: Addr,
    port: u16,
    config: &FloodConfig,
    rng: &mut SimRng,
) -> Packet {
    let src = if config.spoof_sources { spoofed_addr(config.spoof_base, rng) } else { src };
    match vector {
        AttackVector::SynFlood => {
            let header = TcpHeader {
                src_port: ephemeral_port(rng),
                dst_port: port,
                seq: rng.next_u64() as u32,
                ack: 0,
                flags: TcpFlags::SYN,
                window: u16::MAX,
            };
            Packet::tcp(src, target, header, Bytes::new())
        }
        AttackVector::AckFlood => {
            let header = TcpHeader {
                src_port: ephemeral_port(rng),
                dst_port: port,
                seq: rng.next_u64() as u32,
                ack: rng.next_u64() as u32,
                flags: TcpFlags::ACK,
                window: u16::MAX,
            };
            Packet::tcp(src, target, header, Bytes::new())
        }
        AttackVector::UdpFlood => {
            let dst_port = rng.int_range(1, 65_535) as u16;
            Packet::udp(src, target, ephemeral_port(rng), dst_port, udp_payload())
        }
        AttackVector::HttpFlood => {
            panic!("HTTP floods use real TCP connections, not raw packets")
        }
    }
}

/// The shared zero-filled UDP flood body: allocated once per process,
/// cloned (refcount bump) per packet — a flooding bot never touches the
/// allocator in its emit loop.
fn udp_payload() -> Bytes {
    static PAYLOAD: std::sync::OnceLock<Bytes> = std::sync::OnceLock::new();
    PAYLOAD.get_or_init(|| Bytes::from(vec![0u8; UDP_FLOOD_PAYLOAD])).clone()
}

fn ephemeral_port(rng: &mut SimRng) -> u16 {
    // Match the simulated hosts' ephemeral range so flood segments are
    // per-packet indistinguishable from legitimate connection attempts
    // (detection has to come from window statistics, as in the paper).
    rng.int_range(49_152, 65_535) as u16
}

fn spoofed_addr(base: Addr, rng: &mut SimRng) -> Addr {
    let [a, b, _, _] = base.octets();
    Addr::new(a, b, rng.int_range(0, 255) as u8, rng.int_range(1, 254) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::Protocol;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn syn_flood_packets_are_bare_syns() {
        let mut rng = rng();
        let p = flood_packet(
            AttackVector::SynFlood,
            Addr::new(10, 0, 0, 9),
            Addr::new(10, 0, 0, 2),
            80,
            &FloodConfig::default(),
            &mut rng,
        );
        assert_eq!(p.protocol(), Protocol::Tcp);
        assert!(p.tcp_flags().contains(TcpFlags::SYN));
        assert!(!p.tcp_flags().contains(TcpFlags::ACK));
        assert_eq!(p.transport.dst_port(), 80);
        assert_eq!(p.src, Addr::new(10, 0, 0, 9), "no spoofing by default");
    }

    #[test]
    fn ack_flood_packets_are_bare_acks() {
        let mut rng = rng();
        let p = flood_packet(
            AttackVector::AckFlood,
            Addr::new(10, 0, 0, 9),
            Addr::new(10, 0, 0, 2),
            80,
            &FloodConfig::default(),
            &mut rng,
        );
        assert!(p.tcp_flags().contains(TcpFlags::ACK));
        assert!(!p.tcp_flags().contains(TcpFlags::SYN));
    }

    #[test]
    fn udp_flood_randomises_destination_ports() {
        let mut rng = rng();
        let mut ports = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = flood_packet(
                AttackVector::UdpFlood,
                Addr::new(10, 0, 0, 9),
                Addr::new(10, 0, 0, 2),
                80,
                &FloodConfig::default(),
                &mut rng,
            );
            assert_eq!(p.protocol(), Protocol::Udp);
            assert_eq!(p.payload.len(), UDP_FLOOD_PAYLOAD);
            ports.insert(p.transport.dst_port());
        }
        assert!(ports.len() > 50, "ports should be highly diverse, got {}", ports.len());
    }

    #[test]
    fn spoofing_rewrites_sources() {
        let mut rng = rng();
        let config = FloodConfig { spoof_sources: true, spoof_base: Addr::new(10, 0, 0, 0) };
        let mut sources = std::collections::HashSet::new();
        for _ in 0..50 {
            let p = flood_packet(
                AttackVector::SynFlood,
                Addr::new(10, 0, 0, 9),
                Addr::new(10, 0, 0, 2),
                80,
                &config,
                &mut rng,
            );
            let [a, b, _, _] = p.src.octets();
            assert_eq!((a, b), (10, 0));
            sources.insert(p.src);
        }
        assert!(sources.len() > 20, "spoofed sources diverse: {}", sources.len());
    }
}
