//! The long-lived IDS serving layer: bounded ingestion, model
//! hot-swap, shadow evaluation, and multi-link tenancy.
//!
//! [`IdsService`] restructures the per-run [`crate::realtime`] pipeline
//! into a production-style service:
//!
//! * **Bounded ingestion.** Each tenant owns an [`IngestQueue`] between
//!   its sniffer drain and feature extraction, with an explicit
//!   [`BackpressurePolicy`] — block upstream (records wait in the
//!   sniffer's own bounded buffer), drop oldest, or degrade to sampled
//!   admission. Every shed record and window is counted, never silently
//!   lost: per tenant, `windows_ingested == windows_classified +
//!   windows_degraded + windows_shed` holds exactly after
//!   [`ServingHandle::finalize`].
//! * **Model hot-swap.** The champion model lives behind an
//!   [`ml::handle::SwapHandle`]; retrains are staged deterministically
//!   on the sim clock and swapped in at a tick (= window) boundary, so
//!   every window is classified by exactly one model generation — the
//!   generation is stamped into the [`DetectionLog`].
//! * **Champion/challenger shadow evaluation.** An optional challenger
//!   scores the same windows without emitting alerts; verdict and
//!   packet-level disagreements export through `obs`.
//! * **Multi-link tenancy.** One service instance monitors several
//!   links; budgets (per-tick processing budget, modelled cost) are per
//!   tenant, so one tenant's overload degrades only its own windows.
//!
//! Determinism contract: all control flow runs on modelled cost, the
//! sim clock, and buggify-style chaos streams keyed by
//! [`netsim::buggify::stream_seed`]. Wall-clock time feeds the
//! sustainability meter only. Same seed ⇒ byte-identical detection logs
//! and telemetry, regardless of `ml::par` thread counts.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

use capture::dataset::Dataset;
use capture::record::PacketRecord;
use capture::sniffer::SnifferHandle;
use containers::meter::ResourceMeter;
use features::extract::{WindowAggregator, Window, TOTAL_FEATURES};
use ml::handle::SwapHandle;
use ml::matrix::FeatureMatrix;
use netsim::buggify::{stream_seed, DecisionPoint};
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use netsim::world::{App, Ctx};
use obs::{Counter, Gauge, Scope};

use ml::classifier::RowSpan;

use crate::pipeline::{detection_from_predictions, ModelKind, TrainedIds, WindowDetection};
use crate::realtime::DetectionLog;

/// What a tenant does when its ingestion queue is full (or chaos
/// pretends it is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Leave records upstream in the sniffer's bounded buffer; drain
    /// only what the queue has room for. Upstream overflow is the
    /// sniffer's tail-drop accounting (`feed_dropped`).
    BlockUpstream,
    /// Admit the new record and shed the oldest queued one. Shed
    /// records are counted and their windows accounted (degraded if the
    /// window still classifies, shed if it never does).
    DropOldest,
    /// Once the queue runs past half capacity, admit only every `keep`
    /// -th record until it drains below the high-water mark. Sampled
    /// windows classify on the admitted subset and are marked degraded.
    DegradeSampled {
        /// Admit every `keep`-th record while sampling (≥ 2).
        keep: usize,
    },
}

impl BackpressurePolicy {
    /// Stable name for telemetry and display.
    pub fn name(self) -> &'static str {
        match self {
            BackpressurePolicy::BlockUpstream => "block_upstream",
            BackpressurePolicy::DropOldest => "drop_oldest",
            BackpressurePolicy::DegradeSampled { .. } => "degrade_sampled",
        }
    }
}

/// Per-tenant modelled compute budget. Mirrors
/// [`crate::realtime::OverloadPolicy`], with one extra rung on the
/// degradation ladder: a window whose modelled cost exceeds
/// `shed_factor ×` the window interval is shed whole (accounted, never
/// classified) instead of merely marked degraded.
#[derive(Debug, Clone, Copy)]
pub struct TenantBudget {
    /// Records the tenant may move from its queue into feature
    /// extraction per service tick. The queue absorbs the rest — this
    /// is what makes the bound meaningful under flood.
    pub drain_records_per_tick: usize,
    /// Modelled cost per classified packet, in seconds.
    pub per_packet_cost_secs: f64,
    /// Modelled fixed cost per window, in seconds.
    pub per_window_overhead_secs: f64,
    /// Multiple of the window interval beyond which a window is shed
    /// whole rather than classified late.
    pub shed_factor: f64,
}

impl Default for TenantBudget {
    fn default() -> Self {
        TenantBudget {
            drain_records_per_tick: 4_096,
            per_packet_cost_secs: 2e-6,
            per_window_overhead_secs: 1e-4,
            shed_factor: 8.0,
        }
    }
}

impl TenantBudget {
    /// Modelled detection seconds for a window of `packets` packets
    /// under `pressure`.
    pub fn modelled_cost_secs(&self, packets: usize, pressure: f64) -> f64 {
        (self.per_window_overhead_secs + self.per_packet_cost_secs * packets as f64)
            * pressure.max(0.0)
    }
}

/// Static configuration of one tenant (one monitored link).
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Stable tenant name (telemetry scope suffix, report key).
    pub name: String,
    /// Ingestion queue bound, in records.
    pub queue_capacity: usize,
    /// What happens when the queue is full.
    pub policy: BackpressurePolicy,
    /// The tenant's compute budget.
    pub budget: TenantBudget,
    /// Bound applied to the tenant's sniffer feed on start (`None`
    /// leaves it unbounded).
    pub feed_capacity: Option<usize>,
}

impl TenantConfig {
    /// A tenant with the given name and defaults everywhere else:
    /// 8192-record queue, drop-oldest, default budget, 65536-record
    /// feed bound.
    pub fn new(name: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            queue_capacity: 8_192,
            policy: BackpressurePolicy::DropOldest,
            budget: TenantBudget::default(),
            feed_capacity: Some(65_536),
        }
    }
}

/// What [`IngestQueue::offer`] did with a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued normally.
    Admitted,
    /// Queued, but the oldest queued record was shed to make room
    /// (drop-oldest at capacity); carries the shed record's window
    /// index so its window can be marked degraded.
    AdmittedSheddingOldest(u64),
    /// Deliberately skipped by sampled admission.
    SampledOut,
    /// Rejected outright (block-upstream offered past its room).
    Shed,
}

/// The bounded ingestion queue between sniffer drain and feature
/// extraction. Pure data structure — deterministic, allocation-stable,
/// fully accounted: `offered == admitted + shed + sampled_out`, and
/// `len() ≤ capacity` always.
#[derive(Debug)]
pub struct IngestQueue {
    queue: VecDeque<PacketRecord>,
    capacity: usize,
    policy: BackpressurePolicy,
    window_secs: u64,
    /// Forced-full latch for the current tick (chaos or test-injected).
    forced_full: bool,
    /// Offered-record counter used for sampled admission.
    sample_phase: usize,
    /// Whether degrade-to-sampled is currently shedding.
    sampling_active: bool,
    // Accounting. Every offered record reaches exactly one terminal
    // disposition — popped into extraction, shed, or sampled out — or
    // is still queued: `offered == popped + shed + sampled_out + len`.
    offered: u64,
    admitted: u64,
    popped: u64,
    shed: u64,
    sampled_out: u64,
    high_water: usize,
    /// Distinct window indices seen among offered records.
    windows_ingested: u64,
    last_offered_index: Option<u64>,
    /// Absolute end of the last offered record's window, in
    /// nanoseconds: offers inside the window compare against this
    /// cached boundary instead of dividing every timestamp down to a
    /// window index.
    offered_end_nanos: u64,
}

impl IngestQueue {
    /// Creates an empty queue with the given bound and policy.
    /// `window_secs` maps record timestamps to window indices for the
    /// shed-window accounting.
    pub fn new(capacity: usize, policy: BackpressurePolicy, window_secs: u64) -> Self {
        IngestQueue {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            policy,
            window_secs: window_secs.max(1),
            forced_full: false,
            sample_phase: 0,
            sampling_active: false,
            offered: 0,
            admitted: 0,
            popped: 0,
            shed: 0,
            sampled_out: 0,
            high_water: 0,
            windows_ingested: 0,
            last_offered_index: None,
            offered_end_nanos: 0,
        }
    }

    /// Records currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many records the upstream drain may offer right now without
    /// forcing the policy to act. Only [`BackpressurePolicy::BlockUpstream`]
    /// limits the drain; the other policies accept everything and act
    /// at admission.
    pub fn drain_room(&self) -> usize {
        match self.policy {
            BackpressurePolicy::BlockUpstream => {
                if self.forced_full {
                    0
                } else {
                    self.capacity - self.queue.len()
                }
            }
            _ => usize::MAX,
        }
    }

    /// Latches the queue as "momentarily full" for the current tick
    /// (the `serve.ingest_queue_full` chaos point): block-upstream
    /// drains nothing, drop-oldest sheds for every admission, sampled
    /// admission engages regardless of occupancy.
    pub fn force_full(&mut self) {
        self.forced_full = true;
    }

    /// Clears the forced-full latch (start of every tick).
    pub fn clear_forced_full(&mut self) {
        self.forced_full = false;
    }

    /// Offers one record; applies the backpressure policy. The caller
    /// gets back what happened for window-level accounting.
    pub fn offer(&mut self, record: PacketRecord) -> Admission {
        self.offered += 1;
        if self.last_offered_index.is_none() || record.ts.as_nanos() >= self.offered_end_nanos {
            // Window rollover (or first offer): the only division on
            // the offer path — in-window records take the comparison
            // above. Offers arrive in non-decreasing time order.
            let index = record.window_index(self.window_secs);
            self.last_offered_index = Some(index);
            self.offered_end_nanos =
                (index + 1).saturating_mul(self.window_secs.saturating_mul(1_000_000_000));
            self.windows_ingested += 1;
        }
        let effectively_full =
            self.forced_full || self.queue.len() >= self.capacity;
        let outcome = match self.policy {
            BackpressurePolicy::BlockUpstream => {
                if effectively_full {
                    // Only reachable when the caller ignored drain_room
                    // (or chaos latched mid-drain): account as shed
                    // rather than exceeding the bound.
                    self.shed += 1;
                    return Admission::Shed;
                }
                self.queue.push_back(record);
                self.admitted += 1;
                Admission::Admitted
            }
            BackpressurePolicy::DropOldest => {
                if effectively_full {
                    if let Some(oldest) = self.queue.pop_front() {
                        self.shed += 1;
                        self.queue.push_back(record);
                        self.admitted += 1;
                        return Admission::AdmittedSheddingOldest(
                            oldest.window_index(self.window_secs),
                        );
                    }
                    // Capacity 0 edge: nothing to evict, shed the offer.
                    self.shed += 1;
                    return Admission::Shed;
                }
                self.queue.push_back(record);
                self.admitted += 1;
                Admission::Admitted
            }
            BackpressurePolicy::DegradeSampled { keep } => {
                let high_water = self.capacity / 2;
                if self.sampling_active && self.queue.len() * 4 <= self.capacity {
                    self.sampling_active = false; // recovered: low-water at 1/4
                }
                if effectively_full || self.queue.len() >= high_water {
                    self.sampling_active = true;
                }
                if self.sampling_active {
                    self.sample_phase += 1;
                    let keeper = self.sample_phase.is_multiple_of(keep.max(2));
                    if !keeper || self.queue.len() >= self.capacity {
                        self.sampled_out += 1;
                        return Admission::SampledOut;
                    }
                }
                self.queue.push_back(record);
                self.admitted += 1;
                Admission::Admitted
            }
        };
        self.high_water = self.high_water.max(self.queue.len());
        outcome
    }

    /// Pops the oldest admitted record for feature extraction.
    pub fn pop(&mut self) -> Option<PacketRecord> {
        let record = self.queue.pop_front();
        if record.is_some() {
            self.popped += 1;
        }
        record
    }

    /// `(offered, admitted, popped, shed, sampled_out)` record
    /// accounting.
    pub fn record_counts(&self) -> (u64, u64, u64, u64, u64) {
        (self.offered, self.admitted, self.popped, self.shed, self.sampled_out)
    }

    /// Distinct window indices seen among offered records.
    pub fn windows_ingested(&self) -> u64 {
        self.windows_ingested
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Checks the queue's conservation invariant: every offered record
    /// reached exactly one terminal disposition (popped, shed, sampled
    /// out) or is still queued, and the bound was never exceeded.
    /// Returns the first violation, or `None`.
    pub fn conservation_violation(&self) -> Option<String> {
        let accounted = self.popped + self.shed + self.sampled_out + self.queue.len() as u64;
        if self.offered != accounted {
            return Some(format!(
                "queue records unaccounted: offered {} != popped {} + shed {} + sampled {} + queued {}",
                self.offered,
                self.popped,
                self.shed,
                self.sampled_out,
                self.queue.len()
            ));
        }
        if self.high_water > self.capacity {
            return Some(format!(
                "queue bound exceeded: high water {} > capacity {}",
                self.high_water, self.capacity
            ));
        }
        None
    }
}

/// Deterministic background-retrain schedule. Training itself runs
/// synchronously at stage time (the sim has no real background
/// threads), but the *swap* lands `delay_windows` ticks later — the
/// modelled training latency — and only ever at a tick boundary.
#[derive(Debug, Clone)]
pub struct RetrainPolicy {
    /// Stage a retrain every this many service ticks (≥ 1).
    pub every_windows: u64,
    /// Ticks between staging and the atomic swap (modelled training
    /// latency; the `serve.model_swap_delay` chaos point stretches it).
    pub delay_windows: u64,
    /// Model family to retrain.
    pub kind: ModelKind,
    /// Most recent admitted records (with ground-truth labels) kept as
    /// the retrain corpus.
    pub replay_capacity: usize,
    /// Salt folded into the per-retrain RNG seed.
    pub rng_salt: u64,
}

/// Frozen snapshot of one tenant's accounting, embedded in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantCounters {
    /// Distinct window indices offered at ingestion.
    pub windows_ingested: u64,
    /// Windows classified healthy.
    pub windows_classified: u64,
    /// Windows classified but marked degraded (overload, shed-affected,
    /// sampled, or classify error).
    pub windows_degraded: u64,
    /// Windows shed whole — never classified.
    pub windows_shed: u64,
    /// Records offered to the ingest queue.
    pub records_offered: u64,
    /// Records admitted.
    pub records_admitted: u64,
    /// Records popped from the queue into feature extraction.
    pub records_processed: u64,
    /// Records shed (drop-oldest or forced-full).
    pub records_shed: u64,
    /// Records deliberately skipped by sampled admission.
    pub records_sampled_out: u64,
    /// Classify failures converted to degraded windows.
    pub classify_errors: u64,
    /// Challenger windows scored in shadow.
    pub challenger_windows: u64,
    /// Windows where champion and challenger majority verdicts differ.
    pub verdict_disagreements: u64,
    /// Packet-level prediction disagreements between the two models.
    pub packet_disagreements: u64,
}

impl TenantCounters {
    /// Checks the serving conservation invariant: every ingested window
    /// is exactly one of classified / degraded / shed, and every record
    /// is accounted. Valid after [`ServingHandle::finalize`].
    pub fn conservation_violation(&self) -> Option<String> {
        let out = self.windows_classified + self.windows_degraded + self.windows_shed;
        if self.windows_ingested != out {
            return Some(format!(
                "windows unaccounted: ingested {} != classified {} + degraded {} + shed {}",
                self.windows_ingested,
                self.windows_classified,
                self.windows_degraded,
                self.windows_shed
            ));
        }
        if self.records_offered
            != self.records_processed + self.records_shed + self.records_sampled_out
        {
            return Some(format!(
                "records unaccounted: offered {} != processed {} + shed {} + sampled {}",
                self.records_offered,
                self.records_processed,
                self.records_shed,
                self.records_sampled_out
            ));
        }
        None
    }
}

/// Per-tenant deterministic telemetry instruments.
#[derive(Debug)]
struct TenantObs {
    scope: Scope,
    records_offered: Counter,
    records_admitted: Counter,
    records_processed: Counter,
    records_shed: Counter,
    records_sampled_out: Counter,
    windows_ingested: Counter,
    windows_classified: Counter,
    windows_degraded: Counter,
    windows_shed: Counter,
    classify_errors: Counter,
    queue_depth: Gauge,
    queue_high_water: Gauge,
    challenger_windows: Counter,
    verdict_disagreements: Counter,
    packet_disagreements: Counter,
}

impl TenantObs {
    fn new(scope: Scope) -> Self {
        let challenger = scope.child("challenger");
        TenantObs {
            records_offered: scope.counter("records_offered"),
            records_admitted: scope.counter("records_admitted"),
            records_processed: scope.counter("records_processed"),
            records_shed: scope.counter("records_shed"),
            records_sampled_out: scope.counter("records_sampled_out"),
            windows_ingested: scope.counter("windows_ingested"),
            windows_classified: scope.counter("windows_classified"),
            windows_degraded: scope.counter("windows_degraded"),
            windows_shed: scope.counter("windows_shed"),
            classify_errors: scope.counter("classify_errors"),
            queue_depth: scope.gauge("queue_depth"),
            queue_high_water: scope.gauge("queue_high_water"),
            challenger_windows: challenger.counter("windows"),
            verdict_disagreements: challenger.counter("verdict_disagreements"),
            packet_disagreements: challenger.counter("packet_disagreements"),
            scope,
        }
    }
}

/// One tenant's live state.
struct TenantState {
    config: TenantConfig,
    feed: SnifferHandle,
    queue: IngestQueue,
    aggregator: WindowAggregator,
    log: DetectionLog,
    /// Window indices with at least one shed or sampled-out record that
    /// have not yet reached a terminal verdict. Classified → degraded;
    /// never classified → shed (settled at finalize).
    affected_pending: BTreeSet<u64>,
    counters: TenantCounters,
    obs: Option<TenantObs>,
}

/// Serving-layer chaos: the `serve.*` decision points plus the feature
/// layer's `features.state_cull`, evaluated from private streams keyed
/// exactly like the kernel's buggify layer (same swarm seed ⇒ same
/// perturbation schedule), since the service runs above the kernel and
/// cannot reach its `Buggify` state.
#[derive(Debug)]
struct ServingChaos {
    swap_rng: SimRng,
    queue_rng: SimRng,
    cull_rng: SimRng,
    intensity: f64,
    swap_delay_fires: u64,
    queue_full_fires: u64,
    state_cull_fires: u64,
}

impl ServingChaos {
    fn new(swarm_seed: u64, intensity: f64) -> Self {
        ServingChaos {
            swap_rng: SimRng::seed_from(stream_seed(
                swarm_seed,
                DecisionPoint::ServeModelSwapDelay.name(),
            )),
            queue_rng: SimRng::seed_from(stream_seed(
                swarm_seed,
                DecisionPoint::ServeIngestQueueFull.name(),
            )),
            cull_rng: SimRng::seed_from(stream_seed(
                swarm_seed,
                DecisionPoint::FeaturesStateCull.name(),
            )),
            intensity,
            swap_delay_fires: 0,
            queue_full_fires: 0,
            state_cull_fires: 0,
        }
    }
}

/// A model staged for the next boundary swap.
struct StagedSwap {
    ids: TrainedIds,
    ready_tick: u64,
}

/// Service-level deterministic instruments.
#[derive(Debug)]
struct ServiceObs {
    scope: Scope,
    swaps: Counter,
    retrains: Counter,
    retrains_failed: Counter,
    generation: Gauge,
    /// Rows pushed through the coalesced cross-tenant predict batches
    /// (`ids.serving.batch_rows`).
    batch_rows: Counter,
    /// Distinct flows folded at window close across every tenant's
    /// incremental extractor (`features.incremental.flows_touched`).
    flows_touched: Counter,
}

impl ServiceObs {
    fn new(scope: Scope) -> Self {
        let incremental = scope.registry().scope("features.incremental");
        ServiceObs {
            swaps: scope.counter("swaps"),
            retrains: scope.counter("retrains"),
            retrains_failed: scope.counter("retrains_failed"),
            generation: scope.gauge("generation"),
            batch_rows: scope.counter("batch_rows"),
            flows_touched: incremental.counter("flows_touched"),
            scope,
        }
    }
}

/// Configuration of an [`IdsService`] (everything but the feeds).
pub struct ServingConfig {
    /// The initial champion.
    pub champion: TrainedIds,
    /// Optional shadow challenger.
    pub challenger: Option<TrainedIds>,
    /// Promote the challenger to champion at this service tick
    /// (staged, then swapped after the modelled delay).
    pub promote_challenger_at_tick: Option<u64>,
    /// Ticks between staging a promotion and its swap.
    pub promote_delay_ticks: u64,
    /// Optional deterministic background retraining.
    pub retrain: Option<RetrainPolicy>,
    /// Serving-layer chaos `(swarm_seed, intensity)`; `None` disarmed.
    pub chaos: Option<(u64, f64)>,
}

impl ServingConfig {
    /// A service with just a champion: no challenger, no promotion, no
    /// retraining, chaos disarmed.
    pub fn new(champion: TrainedIds) -> Self {
        ServingConfig {
            champion,
            challenger: None,
            promote_challenger_at_tick: None,
            promote_delay_ticks: 1,
            retrain: None,
            chaos: None,
        }
    }
}

/// Per-window bookkeeping of one coalesced classify batch: which
/// tenant's window each [`RowSpan`] belongs to and the per-tenant
/// degradation decisions made before the batch predict.
struct BatchMeta {
    /// Index into the tick's shared `completed` window list.
    window: usize,
    /// Owning tenant (service order).
    tenant: usize,
    /// The window had shed or sampled-out records pending when its
    /// verdict was decided.
    affected: bool,
    /// Modelled cost exceeded the window interval (late ⇒ degraded).
    late: bool,
}

/// Shared core state: the [`IdsService`] app ticks it on the sim
/// clock; the [`ServingHandle`] reads (and finalizes) it afterwards.
struct ServingCore {
    tenants: Vec<TenantState>,
    champion: SwapHandle<TrainedIds>,
    challenger: Option<SwapHandle<TrainedIds>>,
    promote_challenger_at_tick: Option<u64>,
    promote_delay_ticks: u64,
    retrain: Option<RetrainPolicy>,
    replay: VecDeque<PacketRecord>,
    staged: Option<StagedSwap>,
    chaos: Option<ServingChaos>,
    tick_index: u64,
    swaps: u64,
    retrains: u64,
    retrains_failed: u64,
    window_secs: u64,
    last_pressure: f64,
    last_now: SimTime,
    finalized: bool,
    /// First flow-state-conservation violation observed after a forced
    /// cull (`features.state_cull` chaos), or `None`.
    flow_state_violation: Option<String>,
    obs: Option<ServiceObs>,
    // Scratch reused across tenants and windows.
    scratch: FeatureMatrix,
    predictions: Vec<usize>,
    challenger_scratch: FeatureMatrix,
    challenger_predictions: Vec<usize>,
    drain_buf: Vec<PacketRecord>,
    /// Every tenant's windows completed this tick, tenant order.
    completed: Vec<Window>,
    /// Owning tenant of each `completed` window (parallel, sorted).
    completed_by: Vec<usize>,
    /// Row spans of the non-shed windows inside the coalesced batch.
    spans: Vec<RowSpan>,
    /// Per-span deterministic work units from the batch predict.
    span_work: Vec<u64>,
    challenger_span_work: Vec<u64>,
    batch_meta: Vec<BatchMeta>,
}

impl ServingCore {
    /// Stages `ids` for a boundary swap `delay` ticks from now; the
    /// `serve.model_swap_delay` chaos point may stretch the delay.
    fn stage(&mut self, ids: TrainedIds, delay: u64) {
        let mut delay = delay;
        if let Some(chaos) = self.chaos.as_mut() {
            let p = DecisionPoint::ServeModelSwapDelay.base_probability() * chaos.intensity;
            if chaos.swap_rng.chance(p) {
                delay += chaos.swap_rng.int_range(1, 4);
                chaos.swap_delay_fires += 1;
            }
        }
        self.staged = Some(StagedSwap { ids, ready_tick: self.tick_index + delay });
    }

    /// Applies a due staged swap. Called at tick start, before any
    /// window of the tick classifies — the window-boundary guarantee.
    fn apply_due_swap(&mut self, now: SimTime) {
        let due = matches!(&self.staged, Some(s) if s.ready_tick <= self.tick_index);
        if !due {
            return;
        }
        let staged = self.staged.take().expect("checked above");
        let generation = self.champion.swap(staged.ids);
        self.swaps += 1;
        if let Some(obs) = &self.obs {
            obs.swaps.inc();
            obs.generation.set(generation as i64);
            obs.scope.event(
                now.as_nanos(),
                "model_swap",
                format!("generation={generation} tick={}", self.tick_index),
            );
        }
    }

    /// Stages a deterministic retrain from the replay buffer.
    fn maybe_retrain(&mut self, now: SimTime) {
        let Some(policy) = self.retrain.clone() else { return };
        if self.tick_index == 0
            || !self.tick_index.is_multiple_of(policy.every_windows.max(1))
            || self.staged.is_some()
        {
            return;
        }
        let dataset = Dataset::from_records(self.replay.iter().copied().collect::<Vec<_>>());
        let retrain_index = self.retrains + self.retrains_failed;
        let mut rng = SimRng::seed_from(
            policy.rng_salt ^ (retrain_index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let champion = self.champion.load();
        let config = crate::pipeline::IdsConfig {
            window_secs: self.window_secs,
            scaling: champion.value.scaler().method(),
            max_train_samples: policy.replay_capacity,
            holdout_fraction: 0.0,
            stats_refresh: champion.value.stats_refresh(),
        };
        match TrainedIds::train(&dataset, &policy.kind, config, &mut rng) {
            Ok(outcome) => {
                self.retrains += 1;
                if let Some(obs) = &self.obs {
                    obs.retrains.inc();
                    obs.scope.event(
                        now.as_nanos(),
                        "retrain_staged",
                        format!("tick={} samples={}", self.tick_index, outcome.train_samples),
                    );
                }
                self.stage(outcome.ids, policy.delay_windows);
            }
            Err(e) => {
                // Recoverable: a single-class replay buffer (e.g. pure
                // flood) cannot train — keep serving the old champion.
                self.retrains_failed += 1;
                if let Some(obs) = &self.obs {
                    obs.retrains_failed.inc();
                    obs.scope.event(
                        now.as_nanos(),
                        "retrain_failed",
                        format!("tick={} error={e}", self.tick_index),
                    );
                }
            }
        }
    }

    /// One service tick: swap if due, then a two-phase pass — every
    /// tenant ingests (fixed order: drain → admit → budgeted extract),
    /// then all tenants' ready windows classify in **one** coalesced
    /// batch (see [`ServingCore::classify_batch`]).
    fn tick(&mut self, now: SimTime, pressure: f64) -> u64 {
        self.tick_index += 1;
        self.last_pressure = pressure;
        self.last_now = now;
        if let Some(tick) = self.promote_challenger_at_tick {
            if self.tick_index == tick {
                if let Some(challenger) = &self.challenger {
                    let promoted = challenger.load().value.clone();
                    if let Some(obs) = &self.obs {
                        obs.scope.event(
                            now.as_nanos(),
                            "challenger_promotion_staged",
                            format!("tick={tick}"),
                        );
                    }
                    self.stage(promoted, self.promote_delay_ticks);
                }
            }
        }
        self.maybe_retrain(now);
        self.apply_due_swap(now);

        self.completed.clear();
        self.completed_by.clear();
        for t in 0..self.tenants.len() {
            self.ingest_tenant(t, now);
        }
        let classified_packets = self.classify_batch(now, pressure);

        for tenant in &self.tenants {
            if let Some(obs) = &tenant.obs {
                obs.queue_depth.set(tenant.queue.len() as i64);
                obs.queue_high_water.set_max(tenant.queue.high_water() as i64);
            }
        }
        classified_packets
    }

    /// Runs one tenant's ingest phase: drain → admit → budgeted
    /// extract. Completed windows land in the shared `completed` list
    /// (tagged with the tenant in `completed_by`) for the tick's one
    /// coalesced classify pass.
    fn ingest_tenant(&mut self, t: usize, now: SimTime) {
        // Per-tick chaos: maybe latch the queue as full, maybe force an
        // early stale-key cull on the feature state.
        let mut forced = false;
        let mut cull = false;
        if let Some(chaos) = self.chaos.as_mut() {
            let p = DecisionPoint::ServeIngestQueueFull.base_probability() * chaos.intensity;
            if chaos.queue_rng.chance(p) {
                chaos.queue_full_fires += 1;
                forced = true;
            }
            let p = DecisionPoint::FeaturesStateCull.base_probability() * chaos.intensity;
            if chaos.cull_rng.chance(p) {
                chaos.state_cull_fires += 1;
                cull = true;
            }
        }
        let tenant = &mut self.tenants[t];
        tenant.queue.clear_forced_full();
        if forced {
            tenant.queue.force_full();
            if let Some(obs) = &tenant.obs {
                obs.scope.event(
                    now.as_nanos(),
                    "queue_forced_full",
                    format!("tick={}", self.tick_index),
                );
            }
        }

        // Ingest: drain what the policy allows, offer record by record.
        let room = tenant.queue.drain_room();
        tenant.feed.drain_up_to(room, &mut self.drain_buf);
        for &record in &self.drain_buf {
            let index = record.window_index(self.window_secs);
            match tenant.queue.offer(record) {
                Admission::Admitted => {}
                Admission::AdmittedSheddingOldest(shed_index) => {
                    tenant.affected_pending.insert(shed_index);
                }
                Admission::SampledOut | Admission::Shed => {
                    tenant.affected_pending.insert(index);
                }
            }
        }
        // The primary tenant feeds the retrain replay buffer.
        if t == 0 {
            if let Some(policy) = &self.retrain {
                for &record in &self.drain_buf {
                    if self.replay.len() >= policy.replay_capacity {
                        self.replay.pop_front();
                    }
                    self.replay.push_back(record);
                }
            }
        }

        // Budgeted extraction: move at most the tenant's per-tick record
        // budget into the aggregator; the queue holds the rest.
        let tenant = &mut self.tenants[t];
        let mut budget = tenant.config.budget.drain_records_per_tick;
        while budget > 0 {
            let Some(record) = tenant.queue.pop() else { break };
            budget -= 1;
            if let Some(window) = tenant.aggregator.push(record) {
                self.completed.push(window);
                self.completed_by.push(t);
            }
        }

        // The `features.state_cull` chaos point: force an early cull at
        // this window/tick boundary and immediately verify the live
        // per-flow state survived — a cull that disturbs in-window
        // aggregates is the bug class this invariant exists to catch.
        if cull {
            let tenant = &mut self.tenants[t];
            tenant.aggregator.force_cull();
            if let Some(obs) = &tenant.obs {
                obs.scope.event(
                    now.as_nanos(),
                    "state_cull",
                    format!("tick={}", self.tick_index),
                );
            }
            if self.flow_state_violation.is_none() {
                if let Some(v) = tenant.aggregator.state_conservation_violation() {
                    self.flow_state_violation =
                        Some(format!("tenant {}: {v}", tenant.config.name));
                }
            }
        }
    }

    /// Classifies (or sheds) every tenant's completed windows in one
    /// coalesced batch: per-window shed/degrade decisions first (in
    /// tenant-then-window order, exactly as the per-window path made
    /// them), then every surviving window's features stacked into one
    /// matrix, one scaler transform, and one
    /// [`ml::classifier::Classifier::predict_batch_spans_into`] pass.
    /// The [`RowSpan`]s keep budgets, degradation ladders, and `gen=`
    /// stamping per tenant and per window.
    ///
    /// The champion snapshot is loaded **once** per batch: a swap can
    /// only land at a tick boundary, before any window of the tick
    /// classifies, so one load per batch sees the same generation the
    /// per-window loads did — and the per-window stamp proves it.
    fn classify_batch(&mut self, now: SimTime, pressure: f64) -> u64 {
        let mut packets_total = 0u64;
        let window_interval_secs = self.window_secs as f64;

        // Decision pass: shed verdicts and degradation inputs per
        // window, features of the survivors appended to the shared
        // scratch matrix with one RowSpan per window.
        self.scratch.clear();
        self.spans.clear();
        self.batch_meta.clear();
        let mut row_start = 0usize;
        for (i, window) in self.completed.iter().enumerate() {
            let t = self.completed_by[i];
            let tenant = &mut self.tenants[t];
            let affected = tenant.affected_pending.remove(&window.index);
            let modelled_secs =
                tenant.config.budget.modelled_cost_secs(window.records.len(), pressure);
            let shed_threshold =
                window_interval_secs * tenant.config.budget.shed_factor.max(1.0);
            if modelled_secs > shed_threshold {
                // Too far past budget to be worth classifying late:
                // shed whole, accounted.
                tenant.counters.windows_shed += 1;
                if let Some(obs) = &tenant.obs {
                    obs.windows_shed.inc();
                    obs.scope.event(
                        now.as_nanos(),
                        "window_shed",
                        format!("w={} packets={}", window.index, window.records.len()),
                    );
                }
                continue;
            }
            window.append_features(&mut self.scratch);
            self.spans.push(RowSpan { start: row_start, len: window.records.len() });
            row_start += window.records.len();
            self.batch_meta.push(BatchMeta {
                window: i,
                tenant: t,
                affected,
                late: modelled_secs > window_interval_secs,
            });
            packets_total += window.records.len() as u64;
        }
        if self.batch_meta.is_empty() {
            return packets_total;
        }

        // One arity check, one transform, one predict for the whole
        // batch. The checks depend only on the scratch matrix and the
        // fitted scaler — a failure (bad hot-swapped model) degrades
        // every window of the batch, exactly as the per-window path
        // degraded each of them individually.
        let champion = self.champion.load();
        let champion_ok = match champion.value.check_classify_arity(&self.scratch) {
            Ok(()) => {
                champion.value.scaler().transform_matrix(&mut self.scratch);
                champion.value.model().predict_batch_spans_into(
                    self.scratch.view(),
                    &self.spans,
                    &mut self.predictions,
                    &mut self.span_work,
                );
                if let Some(obs) = &self.obs {
                    obs.batch_rows.add(row_start as u64);
                }
                true
            }
            Err(_) => false,
        };

        // Shadow evaluation: the challenger scores the same coalesced
        // batch through its own scaler and scratch, but never emits;
        // only disagreement counters move. Skipped whole if its arity
        // check fails — and compared only when the champion produced
        // predictions.
        let mut challenger_ok = false;
        if let Some(challenger) = &self.challenger {
            let challenger = challenger.load();
            self.challenger_scratch.clear();
            for meta in &self.batch_meta {
                self.completed[meta.window].append_features(&mut self.challenger_scratch);
            }
            if challenger.value.check_classify_arity(&self.challenger_scratch).is_ok() {
                challenger.value.scaler().transform_matrix(&mut self.challenger_scratch);
                challenger.value.model().predict_batch_spans_into(
                    self.challenger_scratch.view(),
                    &self.spans,
                    &mut self.challenger_predictions,
                    &mut self.challenger_span_work,
                );
                challenger_ok = true;
            }
        }

        // Verdict pass, in the same tenant-then-window order: fold each
        // span's predictions into the window's detection, stamp the
        // generation, settle the degradation ladder, log.
        for (j, meta) in self.batch_meta.iter().enumerate() {
            let window = &self.completed[meta.window];
            let tenant = &mut self.tenants[meta.tenant];
            let span = self.spans[j];
            let mut detection = if champion_ok {
                detection_from_predictions(window, &self.predictions[span.range()])
            } else {
                let e = champion
                    .value
                    .check_classify_arity(&self.scratch)
                    .expect_err("checked above");
                tenant.counters.classify_errors += 1;
                if let Some(obs) = &tenant.obs {
                    obs.classify_errors.inc();
                    obs.scope.event(
                        now.as_nanos(),
                        "classify_error",
                        format!("w={} {e}", window.index),
                    );
                }
                WindowDetection {
                    window_index: window.index,
                    packets: window.records.len(),
                    correct: 0,
                    predicted_malicious: 0,
                    truth_malicious: 0,
                    malicious_correct: 0,
                    mixed: window.is_mixed(),
                    majority_truth: window.majority_label(),
                    generation: champion.generation,
                    degraded: true,
                }
            };
            detection.generation = champion.generation;
            detection.degraded |= meta.late || meta.affected;

            if champion_ok && challenger_ok {
                let shadow =
                    detection_from_predictions(window, &self.challenger_predictions[span.range()]);
                tenant.counters.challenger_windows += 1;
                let champion_verdict = detection.predicted_malicious * 2 > detection.packets;
                let challenger_verdict = shadow.predicted_malicious * 2 > shadow.packets;
                let verdict_differs = champion_verdict != challenger_verdict;
                let packet_diffs = self.predictions[span.range()]
                    .iter()
                    .zip(&self.challenger_predictions[span.range()])
                    .filter(|(a, b)| a != b)
                    .count() as u64;
                tenant.counters.verdict_disagreements += u64::from(verdict_differs);
                tenant.counters.packet_disagreements += packet_diffs;
                if let Some(obs) = &tenant.obs {
                    obs.challenger_windows.inc();
                    if verdict_differs {
                        obs.verdict_disagreements.inc();
                    }
                    obs.packet_disagreements.add(packet_diffs);
                }
            }

            if detection.degraded {
                tenant.counters.windows_degraded += 1;
            } else {
                tenant.counters.windows_classified += 1;
            }
            if let Some(obs) = &tenant.obs {
                if detection.degraded {
                    obs.windows_degraded.inc();
                } else {
                    obs.windows_classified.inc();
                }
            }
            tenant.log.push(detection);
        }
        packets_total
    }

    /// Graceful shutdown: drain every queue ignoring budgets, flush the
    /// aggregators, classify the remainder (one final coalesced batch),
    /// and settle shed-window accounting so conservation holds exactly.
    fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        let now = self.last_now;
        let pressure = self.last_pressure;
        self.completed.clear();
        self.completed_by.clear();
        for t in 0..self.tenants.len() {
            let tenant = &mut self.tenants[t];
            while let Some(record) = tenant.queue.pop() {
                if let Some(window) = tenant.aggregator.push(record) {
                    self.completed.push(window);
                    self.completed_by.push(t);
                }
            }
            if let Some(window) = tenant.aggregator.flush() {
                self.completed.push(window);
                self.completed_by.push(t);
            }
        }
        self.classify_batch(now, pressure);
        for tenant in &mut self.tenants {
            // Whatever is still marked affected never completed: every
            // record of those windows was shed or sampled out.
            let wholly_shed = tenant.affected_pending.len() as u64;
            tenant.counters.windows_shed += wholly_shed;
            if let Some(obs) = &tenant.obs {
                for _ in 0..wholly_shed {
                    obs.windows_shed.inc();
                }
            }
            tenant.affected_pending.clear();
        }
        self.sync_counters();
    }

    /// Copies queue-level accounting into the frozen counters and obs.
    fn sync_counters(&mut self) {
        for tenant in &mut self.tenants {
            let (offered, admitted, popped, shed, sampled) = tenant.queue.record_counts();
            tenant.counters.records_offered = offered;
            tenant.counters.records_admitted = admitted;
            tenant.counters.records_processed = popped;
            tenant.counters.records_shed = shed;
            tenant.counters.records_sampled_out = sampled;
            tenant.counters.windows_ingested = tenant.queue.windows_ingested();
            if let Some(obs) = &tenant.obs {
                set_counter(&obs.records_offered, offered);
                set_counter(&obs.records_admitted, admitted);
                set_counter(&obs.records_processed, popped);
                set_counter(&obs.records_shed, shed);
                set_counter(&obs.records_sampled_out, sampled);
                set_counter(&obs.windows_ingested, tenant.queue.windows_ingested());
                obs.queue_depth.set(tenant.queue.len() as i64);
                obs.queue_high_water.set_max(tenant.queue.high_water() as i64);
            }
        }
        if let Some(obs) = &self.obs {
            let touched: u64 = self.tenants.iter().map(|t| t.aggregator.flows_touched()).sum();
            set_counter(&obs.flows_touched, touched);
        }
    }
}

/// Monotone counters can only `inc`/`add`: top an obs counter up to an
/// absolute value tracked elsewhere.
fn set_counter(counter: &Counter, absolute: u64) {
    let current = counter.value();
    if absolute > current {
        counter.add(absolute - current);
    }
}

/// The serving-layer application installed into the IDS container: one
/// instance, many tenants. Pair it with a [`ServingHandle`] via
/// [`serving_pair`].
pub struct IdsService {
    core: Rc<RefCell<ServingCore>>,
    meter: ResourceMeter,
}

impl std::fmt::Debug for IdsService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdsService").finish()
    }
}

/// The report/inspection half of a serving deployment, valid while and
/// after the simulation runs.
#[derive(Clone)]
pub struct ServingHandle {
    core: Rc<RefCell<ServingCore>>,
}

impl std::fmt::Debug for ServingHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingHandle").finish()
    }
}

/// Creates a connected [`IdsService`] / [`ServingHandle`] pair over a
/// config and one `(TenantConfig, SnifferHandle)` per monitored link.
///
/// # Panics
///
/// Panics if `tenants` is empty.
pub fn serving_pair(
    config: ServingConfig,
    tenants: Vec<(TenantConfig, SnifferHandle)>,
    meter: ResourceMeter,
) -> (IdsService, ServingHandle) {
    assert!(!tenants.is_empty(), "a serving deployment needs at least one tenant");
    let window_secs = config.champion.window_secs();
    let stats_refresh = config.champion.stats_refresh();
    let tenant_states = tenants
        .into_iter()
        .map(|(cfg, feed)| TenantState {
            queue: IngestQueue::new(cfg.queue_capacity, cfg.policy, window_secs),
            aggregator: WindowAggregator::new(window_secs).with_stats_refresh(stats_refresh),
            log: DetectionLog::new(),
            affected_pending: BTreeSet::new(),
            counters: TenantCounters::default(),
            obs: None,
            feed,
            config: cfg,
        })
        .collect();
    let core = ServingCore {
        tenants: tenant_states,
        champion: SwapHandle::new(config.champion),
        challenger: config.challenger.map(SwapHandle::new),
        promote_challenger_at_tick: config.promote_challenger_at_tick,
        promote_delay_ticks: config.promote_delay_ticks.max(1),
        retrain: config.retrain,
        replay: VecDeque::new(),
        staged: None,
        chaos: config.chaos.map(|(seed, intensity)| ServingChaos::new(seed, intensity)),
        tick_index: 0,
        swaps: 0,
        retrains: 0,
        retrains_failed: 0,
        window_secs,
        last_pressure: 1.0,
        last_now: SimTime::ZERO,
        finalized: false,
        flow_state_violation: None,
        obs: None,
        scratch: FeatureMatrix::new(TOTAL_FEATURES),
        predictions: Vec::new(),
        challenger_scratch: FeatureMatrix::new(TOTAL_FEATURES),
        challenger_predictions: Vec::new(),
        drain_buf: Vec::new(),
        completed: Vec::new(),
        completed_by: Vec::new(),
        spans: Vec::new(),
        span_work: Vec::new(),
        challenger_span_work: Vec::new(),
        batch_meta: Vec::new(),
    };
    let core = Rc::new(RefCell::new(core));
    (IdsService { core: Rc::clone(&core), meter }, ServingHandle { core })
}

impl IdsService {
    /// Attaches deterministic telemetry under `scope` (conventionally
    /// `ids.serving`): service counters plus one child scope per
    /// tenant. Call before installing the app.
    pub fn set_obs(&mut self, scope: Scope) {
        let mut core = self.core.borrow_mut();
        for tenant in &mut core.tenants {
            tenant.obs = Some(TenantObs::new(scope.child(&tenant.config.name)));
        }
        core.obs = Some(ServiceObs::new(scope));
    }
}

impl App for IdsService {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let core = self.core.borrow();
        for tenant in &core.tenants {
            if let Some(capacity) = tenant.config.feed_capacity {
                tenant.feed.set_capacity(Some(capacity));
            }
        }
        let window_secs = core.window_secs;
        drop(core);
        self.meter.begin_window(ctx.now());
        ctx.set_timer(SimDuration::from_secs(window_secs), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let started = Instant::now();
        let pressure = ctx.cpu_pressure();
        let mut core = self.core.borrow_mut();
        let classified_packets = core.tick(ctx.now(), pressure);
        let window_secs = core.window_secs;
        // Resident footprint: models plus every tenant's queue.
        let champion_bytes = core.champion.load().value.model().memory_bytes();
        let challenger_bytes = core
            .challenger
            .as_ref()
            .map(|c| c.load().value.model().memory_bytes())
            .unwrap_or(0);
        let queued: u64 = core.tenants.iter().map(|t| t.queue.len() as u64).sum();
        drop(core);
        // Wall-clock busy time, stretched by the injected pressure,
        // feeds the sustainability meter only (reporting, not control).
        let busy = started.elapsed().as_secs_f64();
        self.meter.record_cpu_seconds(busy * pressure.max(0.0));
        self.meter.set_memory_bytes(
            champion_bytes + challenger_bytes + (queued + classified_packets) * 64,
        );
        self.meter.end_window(ctx.now());
        self.meter.begin_window(ctx.now());
        ctx.set_timer(SimDuration::from_secs(window_secs), 0);
    }
}

impl ServingHandle {
    /// Graceful shutdown: drains every queue (ignoring budgets),
    /// flushes the aggregators, classifies the remainder, and settles
    /// shed-window accounting. Idempotent. Call after the simulation
    /// ends, before reading reports — conservation holds exactly from
    /// then on.
    pub fn finalize(&self) {
        self.core.borrow_mut().finalize();
    }

    /// Tenant names, in service order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.core.borrow().tenants.iter().map(|t| t.config.name.clone()).collect()
    }

    /// A tenant's detection log (shared handle).
    pub fn tenant_log(&self, name: &str) -> Option<DetectionLog> {
        let core = self.core.borrow();
        core.tenants.iter().find(|t| t.config.name == name).map(|t| t.log.clone())
    }

    /// A tenant's frozen accounting. Call [`ServingHandle::finalize`]
    /// first for exact conservation.
    pub fn tenant_counters(&self, name: &str) -> Option<TenantCounters> {
        let mut core = self.core.borrow_mut();
        core.sync_counters();
        core.tenants.iter().find(|t| t.config.name == name).map(|t| t.counters)
    }

    /// Every tenant's `(name, counters)`, in service order.
    pub fn all_counters(&self) -> Vec<(String, TenantCounters)> {
        let mut core = self.core.borrow_mut();
        core.sync_counters();
        core.tenants
            .iter()
            .map(|t| (t.config.name.clone(), t.counters))
            .collect()
    }

    /// The champion's current generation.
    pub fn generation(&self) -> u64 {
        self.core.borrow().champion.generation()
    }

    /// `(swaps, retrains, retrains_failed)` so far.
    pub fn swap_counts(&self) -> (u64, u64, u64) {
        let core = self.core.borrow();
        (core.swaps, core.retrains, core.retrains_failed)
    }

    /// Serving-chaos `(swap_delay_fires, queue_full_fires,
    /// state_cull_fires)`, or `None` when disarmed.
    pub fn chaos_counts(&self) -> Option<(u64, u64, u64)> {
        self.core
            .borrow()
            .chaos
            .as_ref()
            .map(|c| (c.swap_delay_fires, c.queue_full_fires, c.state_cull_fires))
    }

    /// First flow-state-conservation violation observed after a forced
    /// `features.state_cull`, or `None` when every forced cull left the
    /// live per-flow aggregates intact.
    pub fn flow_state_violation(&self) -> Option<String> {
        self.core.borrow().flow_state_violation.clone()
    }

    /// First conservation violation across every tenant and queue, or
    /// `None` when all accounting is exact. Call after
    /// [`ServingHandle::finalize`].
    pub fn conservation_violation(&self) -> Option<String> {
        {
            let mut core = self.core.borrow_mut();
            core.sync_counters();
        }
        let core = self.core.borrow();
        for tenant in &core.tenants {
            if let Some(v) = tenant.queue.conservation_violation() {
                return Some(format!("tenant {}: {v}", tenant.config.name));
            }
            if let Some(v) = tenant.counters.conservation_violation() {
                return Some(format!("tenant {}: {v}", tenant.config.name));
            }
            let logged = tenant.log.len() as u64;
            let counted =
                tenant.counters.windows_classified + tenant.counters.windows_degraded;
            if logged != counted {
                return Some(format!(
                    "tenant {}: log has {logged} windows but counters account {counted}",
                    tenant.config.name
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capture::record::Label;
    use netsim::packet::Protocol;
    use netsim::Addr;

    fn record(secs: u64, offset_ms: u64) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(secs * 1000 + offset_ms),
            src: Addr::new(10, 0, 0, 1),
            src_port: 1000,
            dst: Addr::new(10, 0, 0, 2),
            dst_port: 80,
            protocol: Protocol::Udp,
            flags: Default::default(),
            wire_len: 100,
            payload_len: 60,
            seq: 0,
            label: Label::Benign,
        }
    }

    #[test]
    fn queue_bound_is_never_exceeded_drop_oldest() {
        let mut q = IngestQueue::new(4, BackpressurePolicy::DropOldest, 1);
        for i in 0..10 {
            q.offer(record(0, i));
        }
        assert_eq!(q.len(), 4);
        assert!(q.high_water() <= 4);
        let (offered, admitted, popped, shed, sampled) = q.record_counts();
        assert_eq!(offered, 10);
        // drop-oldest admits every offer and sheds older admissions to
        // make room; each record's terminal disposition is unique.
        assert_eq!(admitted, 10);
        assert_eq!(popped, 0);
        assert_eq!(shed, 6);
        assert_eq!(sampled, 0);
        assert_eq!(q.conservation_violation(), None);
        while q.pop().is_some() {}
        assert_eq!(q.conservation_violation(), None);
    }

    #[test]
    fn queue_conservation_violation_message() {
        let q = IngestQueue::new(4, BackpressurePolicy::DropOldest, 1);
        assert_eq!(q.conservation_violation(), None);
    }

    #[test]
    fn block_upstream_limits_drain_room() {
        let mut q = IngestQueue::new(3, BackpressurePolicy::BlockUpstream, 1);
        assert_eq!(q.drain_room(), 3);
        q.offer(record(0, 0));
        q.offer(record(0, 1));
        assert_eq!(q.drain_room(), 1);
        q.force_full();
        assert_eq!(q.drain_room(), 0);
        q.clear_forced_full();
        assert_eq!(q.drain_room(), 1);
    }

    #[test]
    fn degrade_sampled_engages_at_high_water() {
        let mut q = IngestQueue::new(8, BackpressurePolicy::DegradeSampled { keep: 2 }, 1);
        for i in 0..20 {
            q.offer(record(0, i));
        }
        let (offered, admitted, _popped, shed, sampled) = q.record_counts();
        assert_eq!(offered, 20);
        assert!(sampled > 0, "sampling must engage past high water");
        assert_eq!(offered, admitted + shed + sampled);
        assert!(q.len() <= q.capacity());
        assert_eq!(q.conservation_violation(), None);
    }

    #[test]
    fn forced_full_engages_policy_without_occupancy() {
        let mut q = IngestQueue::new(100, BackpressurePolicy::DropOldest, 1);
        q.offer(record(0, 0));
        q.force_full();
        let outcome = q.offer(record(0, 1));
        assert!(matches!(outcome, Admission::AdmittedSheddingOldest(_)));
        q.clear_forced_full();
        assert!(matches!(q.offer(record(0, 2)), Admission::Admitted));
    }

    #[test]
    fn windows_ingested_counts_distinct_indices() {
        let mut q = IngestQueue::new(100, BackpressurePolicy::DropOldest, 1);
        for s in 0..5u64 {
            for i in 0..3 {
                q.offer(record(s, i));
            }
        }
        assert_eq!(q.windows_ingested(), 5);
    }

    #[test]
    fn tenant_counter_conservation_checks() {
        let good = TenantCounters {
            windows_ingested: 10,
            windows_classified: 6,
            windows_degraded: 3,
            windows_shed: 1,
            records_offered: 100,
            records_admitted: 96,
            records_processed: 90,
            records_shed: 6,
            records_sampled_out: 4,
            ..TenantCounters::default()
        };
        assert_eq!(good.conservation_violation(), None);
        let bad = TenantCounters { windows_shed: 0, ..good };
        assert!(bad.conservation_violation().unwrap().contains("windows unaccounted"));
        let bad = TenantCounters { records_shed: 0, ..good };
        assert!(bad.conservation_violation().unwrap().contains("records unaccounted"));
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(BackpressurePolicy::BlockUpstream.name(), "block_upstream");
        assert_eq!(BackpressurePolicy::DropOldest.name(), "drop_oldest");
        assert_eq!(BackpressurePolicy::DegradeSampled { keep: 3 }.name(), "degrade_sampled");
    }
}
