//! Federated learning for the IDS — the paper's §VI headline future
//! work: "our upcoming objective is to enhance DDoShield-IoT to emulate
//! a FL-based Network Intrusion Detection System (NIDS) in line with
//! Green AI principles".
//!
//! The implementation follows FedAvg (McMahan et al. 2017): each client
//! (a monitoring site holding only its own capture shard) trains the
//! shared CNN locally for a few epochs; a coordinator averages the
//! parameter updates weighted by client sample counts; repeat for a
//! number of rounds. Raw traffic never leaves a client — only model
//! parameters travel — which is the privacy property the paper is after.

use capture::dataset::Dataset;
use features::extract::extract_matrix;
use features::scaling::{Scaler, ScalingMethod};
use ml::classifier::{evaluate_view, TrainError};
use ml::cnn::{Cnn, CnnConfig};
use ml::matrix::FeatureMatrix;
use ml::metrics::MetricsReport;
use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Federated training options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederatedConfig {
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs per client per round.
    pub local_epochs: usize,
    /// The shared CNN architecture.
    pub cnn: CnnConfig,
    /// Feature-window length in seconds.
    pub window_secs: u64,
}

impl Default for FederatedConfig {
    fn default() -> Self {
        FederatedConfig {
            rounds: 4,
            local_epochs: 2,
            cnn: CnnConfig { epochs: 2, ..CnnConfig::default() },
            window_secs: 1,
        }
    }
}

/// The outcome of federated training.
#[derive(Debug)]
pub struct FederatedOutcome {
    /// The aggregated global model.
    pub global: Cnn,
    /// The shared scaler (averaged from per-client fits, a common FL
    /// preprocessing simplification).
    pub scaler: Scaler,
    /// Pooled-holdout metrics of the global model after each round.
    pub round_metrics: Vec<MetricsReport>,
    /// Samples per client.
    pub client_samples: Vec<usize>,
}

/// Trains a CNN federatedly over per-client capture shards.
///
/// Each client's capture stays local: feature extraction, scaling and
/// gradient computation all happen on the client's shard; only model
/// parameters are exchanged. `holdout` is a small labelled set the
/// coordinator uses to track convergence (in a real deployment this
/// would be a public benchmark set).
///
/// # Errors
///
/// Returns a [`TrainError`] if no client has usable two-class data.
pub fn train_federated(
    clients: &[Dataset],
    holdout: &Dataset,
    config: &FederatedConfig,
    rng: &mut SimRng,
) -> Result<FederatedOutcome, TrainError> {
    // Per-client feature extraction (local preprocessing).
    let mut shards: Vec<(FeatureMatrix, Vec<usize>)> = Vec::new();
    for dataset in clients {
        let (x, y) = extract_matrix(dataset, config.window_secs);
        if !x.is_empty() && y.contains(&0) && y.contains(&1) {
            shards.push((x, y));
        }
    }
    if shards.is_empty() {
        return Err(TrainError::EmptyDataset);
    }

    // Per-client scaler fits, averaged into the shared preprocessing.
    let scalers: Vec<Scaler> =
        shards.iter().map(|(x, _)| Scaler::fit_matrix(ScalingMethod::MinMax, x)).collect();
    let scaler = Scaler::average(&scalers).expect("at least one scaler");
    for (x, _) in &mut shards {
        scaler.transform_matrix(x);
    }

    let (mut xh, yh) = extract_matrix(holdout, config.window_secs);
    scaler.transform_matrix(&mut xh);

    let dims = shards[0].0.n_cols();
    let mut cnn_config = config.cnn;
    cnn_config.input_len = dims;
    cnn_config.epochs = config.local_epochs;
    let mut global = Cnn::init(cnn_config, rng);

    let client_samples: Vec<usize> = shards.iter().map(|(x, _)| x.n_rows()).collect();
    let weights: Vec<f64> = client_samples.iter().map(|&n| n as f64).collect();
    let mut round_metrics = Vec::with_capacity(config.rounds);

    for _ in 0..config.rounds.max(1) {
        // Local training from the current global model.
        let locals: Vec<Cnn> = shards
            .iter()
            .map(|(x, y)| {
                let mut local = global.clone();
                local.train_view(x.view(), y, rng);
                local
            })
            .collect();
        // FedAvg aggregation.
        global = Cnn::federated_average(&locals, &weights).expect("uniform architectures");
        if !xh.is_empty() {
            round_metrics.push(evaluate_view(&global, xh.view(), &yh));
        }
    }

    Ok(FederatedOutcome { global, scaler, round_metrics, client_samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use capture::record::{Label, PacketRecord};
    use netsim::packet::{Protocol, TcpFlags};
    use netsim::time::SimTime;
    use netsim::Addr;

    /// Synthetic shard: benign web-ish traffic + SYN-flood seconds.
    fn shard(seed_host: u8, seconds: u64) -> Dataset {
        let mut records = Vec::new();
        for s in 0..seconds {
            let attack = s % 3 == 2;
            for i in 0..30u32 {
                let ts = SimTime::from_millis(s * 1000 + i as u64 * 30);
                records.push(if attack {
                    PacketRecord {
                        ts,
                        src: Addr::new(10, 0, seed_host, (10 + i % 4) as u8),
                        src_port: 50_000 + (i * 37 % 9_000) as u16,
                        dst: Addr::new(10, 0, 0, 2),
                        dst_port: 80,
                        protocol: Protocol::Tcp,
                        flags: TcpFlags::SYN,
                        wire_len: 40,
                        payload_len: 0,
                        seq: i.wrapping_mul(97_711),
                        label: Label::Malicious,
                    }
                } else {
                    PacketRecord {
                        ts,
                        src: Addr::new(10, 0, seed_host, (3 + i % 2) as u8),
                        src_port: 50_000 + (i % 2) as u16,
                        dst: Addr::new(10, 0, 0, 2),
                        dst_port: [80u16, 1935, 21][(i % 3) as usize],
                        protocol: Protocol::Tcp,
                        flags: TcpFlags::ACK | TcpFlags::PSH,
                        wire_len: 300 + (i % 5) * 200,
                        payload_len: 260,
                        seq: 1_000 + i * 260,
                        label: Label::Benign,
                    }
                });
            }
        }
        Dataset::from_records(records)
    }

    #[test]
    fn federated_training_converges() {
        let clients: Vec<Dataset> = (1..=3).map(|h| shard(h, 18)).collect();
        // The holdout must come from address space the clients have
        // seen: the paper's basic features include raw IPs, and a
        // min-max scaler fitted on sites 1-3 maps unseen host octets far
        // outside the unit box, saturating the network (a real FL
        // pathology this test originally tripped over).
        let holdout = shard(2, 9);
        let mut rng = SimRng::seed_from(5);
        let config = FederatedConfig {
            rounds: 6,
            local_epochs: 4,
            cnn: CnnConfig { learning_rate: 5e-3, ..CnnConfig::default() },
            window_secs: 1,
        };
        let outcome = train_federated(&clients, &holdout, &config, &mut rng).unwrap();
        assert_eq!(outcome.client_samples.len(), 3);
        assert_eq!(outcome.round_metrics.len(), 6);
        let last = outcome.round_metrics.last().unwrap();
        assert!(last.accuracy > 0.9, "final round accuracy {}", last.accuracy);
        // Training improved over the first round or started high already.
        let first = outcome.round_metrics.first().unwrap();
        assert!(last.accuracy >= first.accuracy - 0.05);
    }

    #[test]
    fn federated_errors_without_usable_clients() {
        let mut rng = SimRng::seed_from(6);
        let err = train_federated(&[], &shard(1, 5), &FederatedConfig::default(), &mut rng);
        assert!(err.is_err());
    }
}
