//! # ids — the Real-Time IDS Unit
//!
//! The fourth container of DDoShield-IoT (Fig. 2 of the paper): a
//! three-stage loop of (i) real-time traffic monitoring via a sniffer
//! feed, (ii) preprocessing — windowed basic + statistical feature
//! extraction and scaling — and (iii) detection with a user-selected ML
//! model (RF, K-Means or CNN). Per-window accuracy is logged (the paper
//! reports accuracy only in real time, because single-class windows make
//! precision/recall undefined) and the loop's actual compute time and
//! memory feed the sustainability metrics of Table II.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alerts;
pub mod federated;
pub mod pipeline;
pub mod realtime;
pub mod resources;
pub mod serving;

pub use alerts::{alert_episodes, detection_latencies, summarize, AlertPolicy, AlertSummary};
pub use federated::{train_federated, FederatedConfig, FederatedOutcome};
pub use pipeline::{train_model, IdsConfig, ModelKind, TrainedIds, TrainingOutcome, WindowDetection};
pub use realtime::{DetectionLog, OverloadPolicy, RealTimeIds};
pub use resources::{RobustnessReport, SustainabilityReport};
pub use serving::{
    serving_pair, Admission, BackpressurePolicy, IdsService, IngestQueue, RetrainPolicy,
    ServingConfig, ServingHandle, TenantBudget, TenantConfig, TenantCounters,
};
