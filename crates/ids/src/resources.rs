//! Sustainability metrics: the paper's Table II row for one model,
//! plus the robustness accounting that proves the detection loop held
//! up under injected faults and overload.

use capture::sniffer::SnifferHandle;
use containers::meter::ResourceMeter;
use ml::classifier::Classifier;
use serde::{Deserialize, Serialize};

use crate::realtime::DetectionLog;

/// The three sustainability metrics the paper reports per model:
/// CPU usage (%), occupied RAM (Kb) and model size (Kb).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SustainabilityReport {
    /// Mean CPU utilisation of the IDS loop over its observation
    /// windows, in percent.
    pub cpu_percent: f64,
    /// Peak resident memory of the model + working buffers, in Kb.
    pub memory_kb: f64,
    /// Serialised model blob size, in Kb.
    pub model_size_kb: f64,
}

impl SustainabilityReport {
    /// Assembles the report from the container meter and the model.
    pub fn collect(meter: &ResourceMeter, model: &dyn Classifier) -> Self {
        SustainabilityReport {
            cpu_percent: meter.mean_cpu_percent(),
            memory_kb: meter.memory_peak_bytes() as f64 / 1024.0,
            model_size_kb: model.encode().len() as f64 / 1024.0,
        }
    }
}

impl std::fmt::Display for SustainabilityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cpu={:.2}% mem={:.2}Kb model={:.2}Kb",
            self.cpu_percent, self.memory_kb, self.model_size_kb
        )
    }
}

/// How the testbed held up under load and injected faults: every IDS
/// window must be accounted for (classified or degraded), any packets
/// the bounded feed shed are counted rather than vanishing, and the
/// container-lifecycle fallout — downtime, benign-client success rate,
/// bot eviction and reinfection latency — is recorded per run.
///
/// All fields are integers so two same-seed runs serialize and print
/// byte-identically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Windows the IDS logged (classified, whether healthy or degraded).
    pub windows_total: usize,
    /// Of those, windows marked degraded by the overload policy.
    pub windows_degraded: usize,
    /// Windows the serving layer shed whole under backpressure — never
    /// classified, but never silently lost (zero outside serving runs).
    #[serde(default)]
    pub windows_shed: usize,
    /// Records the serving layer's bounded ingestion queues shed under
    /// the drop-oldest policy (zero outside serving runs).
    #[serde(default)]
    pub records_shed: u64,
    /// Records the degrade-to-sampled policy deliberately skipped while
    /// its queue ran hot (zero outside serving runs).
    #[serde(default)]
    pub records_sampled_out: u64,
    /// Packets the bounded sniffer feed dropped at capacity.
    pub feed_dropped: u64,
    /// Packets the sniffer captured into the feed.
    pub feed_captured: u64,
    /// Accumulated downtime per container, `(name, nanoseconds)`, sorted
    /// by name. Empty when lifecycle accounting was not wired in.
    pub container_downtime: Vec<(String, u64)>,
    /// Benign client transactions started.
    pub benign_started: u64,
    /// Benign client transactions completed successfully.
    pub benign_completed: u64,
    /// Benign client transactions that failed after exhausting retries.
    pub benign_failed: u64,
    /// Benign client retry attempts.
    pub benign_retried: u64,
    /// Bots the C2 evicted for missed heartbeats or dead connections.
    pub bots_evicted: u64,
    /// Evicted devices the scanner re-compromised.
    pub reinfections: u64,
    /// Total eviction-to-reinfection latency in nanoseconds.
    pub reinfection_latency_total_nanos: u64,
}

impl RobustnessReport {
    /// Assembles the IDS-loop half of the report from the detection log
    /// and the sniffer feed; lifecycle fields start zeroed and are
    /// filled in by the testbed when it owns the container runtime.
    pub fn collect(log: &DetectionLog, feed: &SnifferHandle) -> Self {
        RobustnessReport {
            windows_total: log.len(),
            windows_degraded: log.degraded_count(),
            windows_shed: 0,
            records_shed: 0,
            records_sampled_out: 0,
            feed_dropped: feed.dropped_overflow(),
            feed_captured: feed.captured_total(),
            container_downtime: Vec::new(),
            benign_started: 0,
            benign_completed: 0,
            benign_failed: 0,
            benign_retried: 0,
            bots_evicted: 0,
            reinfections: 0,
            reinfection_latency_total_nanos: 0,
        }
    }

    /// Fraction of benign transactions that completed, or `None` before
    /// any started.
    pub fn benign_success_rate(&self) -> Option<f64> {
        if self.benign_started == 0 {
            return None;
        }
        Some(self.benign_completed as f64 / self.benign_started as f64)
    }

    /// Total downtime across all containers, in nanoseconds.
    pub fn total_downtime_nanos(&self) -> u64 {
        self.container_downtime.iter().map(|(_, ns)| ns).sum()
    }

    /// Mean eviction-to-reinfection latency in nanoseconds, or `None`
    /// if no device was reinfected.
    pub fn mean_reinfection_latency_nanos(&self) -> Option<u64> {
        if self.reinfections == 0 {
            return None;
        }
        Some(self.reinfection_latency_total_nanos / self.reinfections)
    }
}

impl std::fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "windows={} degraded={} shed={} feed_captured={} feed_dropped={}",
            self.windows_total,
            self.windows_degraded,
            self.windows_shed,
            self.feed_captured,
            self.feed_dropped
        )?;
        if self.records_shed > 0 || self.records_sampled_out > 0 {
            write!(
                f,
                " records_shed={} records_sampled_out={}",
                self.records_shed, self.records_sampled_out
            )?;
        }
        write!(
            f,
            " benign={}/{} failed={} retried={}",
            self.benign_completed, self.benign_started, self.benign_failed, self.benign_retried
        )?;
        write!(
            f,
            " evicted={} reinfections={} reinfection_ns={}",
            self.bots_evicted, self.reinfections, self.reinfection_latency_total_nanos
        )?;
        for (name, ns) in &self.container_downtime {
            if *ns > 0 {
                write!(f, " down[{name}]={ns}ns")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;

    struct Fixed;
    impl Classifier for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn predict(&self, _features: &[f64]) -> usize {
            0
        }
        fn encode(&self) -> Vec<u8> {
            vec![0u8; 2048]
        }
        fn memory_bytes(&self) -> u64 {
            4096
        }
        fn clone_box(&self) -> Box<dyn Classifier> {
            Box::new(Fixed)
        }
    }

    #[test]
    fn robustness_rates_and_totals() {
        let mut report = RobustnessReport {
            windows_total: 10,
            windows_degraded: 1,
            windows_shed: 2,
            records_shed: 7,
            records_sampled_out: 3,
            feed_dropped: 0,
            feed_captured: 100,
            container_downtime: vec![("dev-0".into(), 3), ("tserver".into(), 4)],
            benign_started: 8,
            benign_completed: 6,
            benign_failed: 2,
            benign_retried: 5,
            bots_evicted: 2,
            reinfections: 2,
            reinfection_latency_total_nanos: 30,
        };
        assert_eq!(report.benign_success_rate(), Some(0.75));
        assert_eq!(report.total_downtime_nanos(), 7);
        assert_eq!(report.mean_reinfection_latency_nanos(), Some(15));
        let display = report.to_string();
        assert!(display.contains("benign=6/8"), "{display}");
        assert!(display.contains("down[tserver]=4ns"), "{display}");
        assert!(display.contains("shed=2"), "{display}");
        assert!(display.contains("records_shed=7 records_sampled_out=3"), "{display}");
        report.benign_started = 0;
        report.reinfections = 0;
        assert_eq!(report.benign_success_rate(), None);
        assert_eq!(report.mean_reinfection_latency_nanos(), None);
    }

    #[test]
    fn report_converts_units() {
        let meter = ResourceMeter::new();
        meter.set_memory_bytes(10_240);
        meter.begin_window(SimTime::from_secs(0));
        meter.record_cpu_seconds(0.5);
        meter.end_window(SimTime::from_secs(1));
        let report = SustainabilityReport::collect(&meter, &Fixed);
        assert!((report.cpu_percent - 50.0).abs() < 1e-9);
        assert!((report.memory_kb - 10.0).abs() < 1e-9);
        assert!((report.model_size_kb - 2.0).abs() < 1e-9);
        assert!(!report.to_string().is_empty());
    }
}
