//! Sustainability metrics: the paper's Table II row for one model,
//! plus the robustness accounting that proves the detection loop held
//! up under injected faults and overload.

use capture::sniffer::SnifferHandle;
use containers::meter::ResourceMeter;
use ml::classifier::Classifier;
use serde::{Deserialize, Serialize};

use crate::realtime::DetectionLog;

/// The three sustainability metrics the paper reports per model:
/// CPU usage (%), occupied RAM (Kb) and model size (Kb).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SustainabilityReport {
    /// Mean CPU utilisation of the IDS loop over its observation
    /// windows, in percent.
    pub cpu_percent: f64,
    /// Peak resident memory of the model + working buffers, in Kb.
    pub memory_kb: f64,
    /// Serialised model blob size, in Kb.
    pub model_size_kb: f64,
}

impl SustainabilityReport {
    /// Assembles the report from the container meter and the model.
    pub fn collect(meter: &ResourceMeter, model: &dyn Classifier) -> Self {
        SustainabilityReport {
            cpu_percent: meter.mean_cpu_percent(),
            memory_kb: meter.memory_peak_bytes() as f64 / 1024.0,
            model_size_kb: model.encode().len() as f64 / 1024.0,
        }
    }
}

impl std::fmt::Display for SustainabilityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cpu={:.2}% mem={:.2}Kb model={:.2}Kb",
            self.cpu_percent, self.memory_kb, self.model_size_kb
        )
    }
}

/// How the real-time loop held up under load: every window must be
/// accounted for (classified or degraded), and any packets the bounded
/// feed shed are counted rather than vanishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Windows the IDS logged (classified, whether healthy or degraded).
    pub windows_total: usize,
    /// Of those, windows marked degraded by the overload policy.
    pub windows_degraded: usize,
    /// Packets the bounded sniffer feed dropped at capacity.
    pub feed_dropped: u64,
    /// Packets the sniffer captured into the feed.
    pub feed_captured: u64,
}

impl RobustnessReport {
    /// Assembles the report from the detection log and the sniffer feed.
    pub fn collect(log: &DetectionLog, feed: &SnifferHandle) -> Self {
        RobustnessReport {
            windows_total: log.len(),
            windows_degraded: log.degraded_count(),
            feed_dropped: feed.dropped_overflow(),
            feed_captured: feed.captured_total(),
        }
    }
}

impl std::fmt::Display for RobustnessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "windows={} degraded={} feed_captured={} feed_dropped={}",
            self.windows_total, self.windows_degraded, self.feed_captured, self.feed_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;

    struct Fixed;
    impl Classifier for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn predict(&self, _features: &[f64]) -> usize {
            0
        }
        fn encode(&self) -> Vec<u8> {
            vec![0u8; 2048]
        }
        fn memory_bytes(&self) -> u64 {
            4096
        }
    }

    #[test]
    fn report_converts_units() {
        let meter = ResourceMeter::new();
        meter.set_memory_bytes(10_240);
        meter.begin_window(SimTime::from_secs(0));
        meter.record_cpu_seconds(0.5);
        meter.end_window(SimTime::from_secs(1));
        let report = SustainabilityReport::collect(&meter, &Fixed);
        assert!((report.cpu_percent - 50.0).abs() < 1e-9);
        assert!((report.memory_kb - 10.0).abs() < 1e-9);
        assert!((report.model_size_kb - 2.0).abs() < 1e-9);
        assert!(!report.to_string().is_empty());
    }
}
