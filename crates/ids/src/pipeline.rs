//! The IDS pipeline: preprocessing + model training and window
//! classification (Fig. 2 of the paper: monitor → preprocess → detect).

use capture::dataset::Dataset;
use capture::record::Label;
use features::extract::{extract_matrix, Window, TOTAL_FEATURES};
use features::scaling::{Scaler, ScalingMethod};
use ml::autoencoder::{Autoencoder, AutoencoderConfig};
use ml::classifier::{evaluate_view, Classifier, TrainError};
use ml::matrix::{gather, FeatureMatrix, MatrixView};
use ml::cnn::{Cnn, CnnConfig};
use ml::iforest::{IsolationForest, IsolationForestConfig};
use ml::kmeans::{KMeansConfig, KMeansDetector};
use ml::metrics::MetricsReport;
use ml::rf::{ForestConfig, RandomForest};
use ml::svm::{LinearSvm, SvmConfig};
use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Which model the IDS unit runs (the paper's user-selectable choice).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// Random Forest.
    RandomForest(ForestConfig),
    /// Unsupervised entropy-penalised K-Means with cluster labelling.
    KMeans(KMeansConfig),
    /// 1-D convolutional neural network.
    Cnn(CnnConfig),
    /// Linear SVM (§V extension model).
    Svm(SvmConfig),
    /// Isolation Forest (§V extension model).
    IsolationForest(IsolationForestConfig),
    /// Autoencoder anomaly detector (§V extension model, VAE stand-in).
    Autoencoder(AutoencoderConfig),
}

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::RandomForest(_) => "RF",
            ModelKind::KMeans(_) => "K-Means",
            ModelKind::Cnn(_) => "CNN",
            ModelKind::Svm(_) => "SVM",
            ModelKind::IsolationForest(_) => "IF",
            ModelKind::Autoencoder(_) => "AE",
        }
    }

    /// All three models with their default configurations, in the
    /// paper's table order.
    pub fn defaults() -> Vec<ModelKind> {
        vec![
            ModelKind::RandomForest(ForestConfig::default()),
            ModelKind::KMeans(KMeansConfig::default()),
            ModelKind::Cnn(CnnConfig::default()),
        ]
    }

    /// The paper's three models plus the §V extension models (SVM,
    /// Isolation Forest, autoencoder), all with default configurations.
    pub fn extended() -> Vec<ModelKind> {
        let mut kinds = ModelKind::defaults();
        kinds.push(ModelKind::Svm(SvmConfig::default()));
        kinds.push(ModelKind::IsolationForest(IsolationForestConfig::default()));
        kinds.push(ModelKind::Autoencoder(AutoencoderConfig::default()));
        kinds
    }
}

/// Preprocessing and training options of the IDS unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdsConfig {
    /// Feature-window length in seconds (1 s in the paper).
    pub window_secs: u64,
    /// Feature scaling method.
    pub scaling: ScalingMethod,
    /// Cap on training samples (stratified subsample above this; keeps
    /// CNN training tractable on multi-hundred-thousand-packet captures).
    pub max_train_samples: usize,
    /// Fraction of the training capture held out for train-time metrics.
    pub holdout_fraction: f64,
    /// Recompute statistical features only every N-th window at
    /// detection time (the paper's §IV-E CPU mitigation; 1 = always).
    pub stats_refresh: usize,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            window_secs: 1,
            scaling: ScalingMethod::MinMax,
            max_train_samples: 20_000,
            holdout_fraction: 0.2,
            stats_refresh: 1,
        }
    }
}

/// A trained IDS: scaler + model, ready for real-time detection.
#[derive(Clone)]
pub struct TrainedIds {
    model: Box<dyn Classifier>,
    scaler: Scaler,
    config: IdsConfig,
}

impl std::fmt::Debug for TrainedIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedIds")
            .field("model", &self.model.name())
            .field("config", &self.config)
            .finish()
    }
}

/// The outcome of training: the IDS plus its train-time metric row.
#[derive(Debug)]
pub struct TrainingOutcome {
    /// The deployable IDS.
    pub ids: TrainedIds,
    /// Metrics on the held-out part of the training capture (the
    /// paper's accuracy / precision / recall / F1 row).
    pub holdout_metrics: MetricsReport,
    /// Samples actually used for fitting (after subsampling).
    pub train_samples: usize,
}

impl TrainedIds {
    /// Assembles an IDS from an externally trained model and scaler
    /// (e.g. a federated global model, or a model loaded from its
    /// persisted blob).
    pub fn from_parts(model: Box<dyn Classifier>, scaler: Scaler, config: IdsConfig) -> Self {
        TrainedIds { model, scaler, config }
    }

    /// Trains an IDS of the given kind on a labelled capture.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if the capture is unusable (empty or
    /// single-class).
    pub fn train(
        dataset: &Dataset,
        kind: &ModelKind,
        config: IdsConfig,
        rng: &mut SimRng,
    ) -> Result<TrainingOutcome, TrainError> {
        let (mut x, y) = extract_matrix(dataset, config.window_secs);
        if x.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let scaler = Scaler::fit_transform_matrix(config.scaling, &mut x);

        // Hold out a random fraction for the paper's train-time metrics.
        // Both splits are index views into the shared matrix — no feature
        // value is copied.
        let mut indices: Vec<usize> = (0..x.n_rows()).collect();
        rng.shuffle(&mut indices);
        let holdout =
            ((x.n_rows() as f64 * config.holdout_fraction) as usize).min(x.n_rows() / 2);
        let (test_idx, train_idx) = indices.split_at(holdout);

        // Stratified cap on training samples.
        let train_idx = stratified_cap(train_idx, &y, config.max_train_samples, rng);
        let yt = gather(&y, &train_idx);

        let model = train_model_view(kind, x.subset(&train_idx), &yt, rng)?;

        let holdout_metrics = if test_idx.is_empty() {
            evaluate_view(model.as_ref(), x.subset(&train_idx), &yt)
        } else {
            let yh = gather(&y, test_idx);
            evaluate_view(model.as_ref(), x.subset(test_idx), &yh)
        };

        Ok(TrainingOutcome {
            ids: TrainedIds { model, scaler, config },
            holdout_metrics,
            train_samples: train_idx.len(),
        })
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.config.window_secs
    }

    /// The configured statistical-feature refresh period (in windows).
    pub fn stats_refresh(&self) -> usize {
        self.config.stats_refresh
    }

    /// The underlying model.
    pub fn model(&self) -> &dyn Classifier {
        self.model.as_ref()
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> &Scaler {
        &self.scaler
    }

    /// Classifies every packet of a completed window, returning the
    /// per-window detection result (the paper's per-second accuracy).
    pub fn classify_window(&self, window: &Window) -> WindowDetection {
        let mut scratch = FeatureMatrix::new(TOTAL_FEATURES);
        let mut predictions = Vec::new();
        self.classify_window_into(window, &mut scratch, &mut predictions)
    }

    /// Like [`TrainedIds::classify_window`], but extracts features into a
    /// caller-owned scratch matrix and predicts into a caller-owned
    /// buffer, so a detection loop allocates nothing per window after
    /// warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was not created with [`TOTAL_FEATURES`]
    /// columns.
    pub fn classify_window_into(
        &self,
        window: &Window,
        scratch: &mut FeatureMatrix,
        predictions: &mut Vec<usize>,
    ) -> WindowDetection {
        self.classify_window_profiled(window, scratch, predictions).0
    }

    /// Like [`TrainedIds::classify_window_into`], but also returns the
    /// window's [`WindowProfile`]: the deterministic work units the
    /// model's predict path performed (see
    /// [`Classifier::predict_with_work`]) — the profiling signal the
    /// real-time IDS feeds into its telemetry histograms — plus the
    /// wall-clock time the predict call took, which may only ever feed
    /// reporting surfaces (never control flow or deterministic
    /// telemetry).
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was not created with [`TOTAL_FEATURES`]
    /// columns or the fitted scaler's arity does not match the feature
    /// layout. Long-lived serving loops should prefer
    /// [`TrainedIds::try_classify_window_profiled`], which reports those
    /// conditions as a [`ClassifyError`] instead so a bad hot-swapped
    /// model degrades windows rather than killing the service.
    pub fn classify_window_profiled(
        &self,
        window: &Window,
        scratch: &mut FeatureMatrix,
        predictions: &mut Vec<usize>,
    ) -> (WindowDetection, WindowProfile) {
        self.try_classify_window_profiled(window, scratch, predictions)
            .unwrap_or_else(|e| panic!("classify_window: {e}"))
    }

    /// Fallible core of [`TrainedIds::classify_window_profiled`]: arity
    /// mismatches between the scratch matrix, the fitted scaler, and the
    /// feature layout come back as a [`ClassifyError`] instead of a
    /// panic, so overload paths can account the window as degraded and
    /// keep serving.
    ///
    /// # Errors
    ///
    /// Returns [`ClassifyError::ScratchArity`] when `scratch` was not
    /// created with [`TOTAL_FEATURES`] columns, and
    /// [`ClassifyError::ScalerArity`] when the fitted scaler expects a
    /// different feature count (e.g. a model assembled via
    /// [`TrainedIds::from_parts`] from an incompatible pipeline was
    /// swapped in).
    pub fn try_classify_window_profiled(
        &self,
        window: &Window,
        scratch: &mut FeatureMatrix,
        predictions: &mut Vec<usize>,
    ) -> Result<(WindowDetection, WindowProfile), ClassifyError> {
        self.check_classify_arity(scratch)?;
        scratch.clear();
        window.append_features(scratch);
        self.scaler.transform_matrix(scratch);
        let predict_started = std::time::Instant::now();
        let work = self.model.predict_batch_into(scratch.view(), predictions);
        let predict_wall_ns = predict_started.elapsed().as_nanos() as u64;
        let detection = detection_from_predictions(window, predictions);
        Ok((detection, WindowProfile { work_units: work, predict_wall_ns }))
    }

    /// The arity preconditions of a classify pass, shared by the
    /// per-window path and the serving layer's coalesced batch (which
    /// checks once per batch instead of once per window — the checks
    /// depend only on the scratch matrix and the fitted scaler, never on
    /// the windows).
    ///
    /// # Errors
    ///
    /// The same [`ClassifyError`] variants as
    /// [`TrainedIds::try_classify_window_profiled`].
    pub fn check_classify_arity(&self, scratch: &FeatureMatrix) -> Result<(), ClassifyError> {
        if scratch.n_cols() != TOTAL_FEATURES {
            return Err(ClassifyError::ScratchArity {
                expected: TOTAL_FEATURES,
                got: scratch.n_cols(),
            });
        }
        if self.scaler.dims() != TOTAL_FEATURES {
            return Err(ClassifyError::ScalerArity {
                expected: TOTAL_FEATURES,
                got: self.scaler.dims(),
            });
        }
        Ok(())
    }
}

/// Folds one window's per-packet predictions into its
/// [`WindowDetection`] (generation and degradation are stamped by the
/// caller). `predictions` must be packet-aligned with the window — in a
/// coalesced batch, the window's [`ml::classifier::RowSpan`] slice.
pub fn detection_from_predictions(window: &Window, predictions: &[usize]) -> WindowDetection {
    let truth = window.labels();
    debug_assert_eq!(predictions.len(), truth.len(), "predictions not packet-aligned");
    let correct = predictions.iter().zip(&truth).filter(|(p, t)| p == t).count();
    let predicted_malicious = predictions.iter().filter(|&&p| p == 1).count();
    let truth_malicious = truth.iter().filter(|&&t| t == 1).count();
    let malicious_correct =
        predictions.iter().zip(&truth).filter(|(&p, &t)| p == 1 && t == 1).count();
    WindowDetection {
        window_index: window.index,
        packets: window.records.len(),
        correct,
        predicted_malicious,
        truth_malicious,
        malicious_correct,
        mixed: window.is_mixed(),
        majority_truth: window.majority_label(),
        generation: 0,
        degraded: false,
    }
}

/// Why a window could not be classified (recoverable — the serving
/// layer accounts the window as degraded instead of panicking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifyError {
    /// The caller-owned scratch matrix has the wrong column count.
    ScratchArity {
        /// Expected column count ([`TOTAL_FEATURES`]).
        expected: usize,
        /// The scratch matrix's actual column count.
        got: usize,
    },
    /// The fitted scaler expects a different feature arity than the
    /// extraction layout produces.
    ScalerArity {
        /// Expected feature count ([`TOTAL_FEATURES`]).
        expected: usize,
        /// The scaler's fitted dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::ScratchArity { expected, got } => {
                write!(f, "scratch matrix has {got} columns, feature layout needs {expected}")
            }
            ClassifyError::ScalerArity { expected, got } => {
                write!(f, "scaler fitted for {got} features, feature layout needs {expected}")
            }
        }
    }
}

impl std::error::Error for ClassifyError {}

/// Profiling signals of one classified window.
#[derive(Debug, Clone, Copy)]
pub struct WindowProfile {
    /// Deterministic model work units (RF: nodes visited; CNN: MACs;
    /// K-Means: distance multiply-adds). A pure function of model and
    /// input — safe to export in byte-identical telemetry.
    pub work_units: u64,
    /// Wall-clock nanoseconds the predict call took. Host-dependent:
    /// feeds the wall-clock reporting registry and the sustainability
    /// meter only, never deterministic telemetry or control flow.
    pub predict_wall_ns: u64,
}

/// Trains the concrete model behind the [`Classifier`] interface.
pub fn train_model(
    kind: &ModelKind,
    x: &[Vec<f64>],
    y: &[usize],
    rng: &mut SimRng,
) -> Result<Box<dyn Classifier>, TrainError> {
    Ok(match kind {
        ModelKind::RandomForest(config) => Box::new(RandomForest::fit(x, y, config, rng)?),
        ModelKind::KMeans(config) => Box::new(KMeansDetector::fit(x, y, config, rng)?),
        ModelKind::Cnn(config) => Box::new(Cnn::fit(x, y, config, rng)?),
        ModelKind::Svm(config) => Box::new(LinearSvm::fit(x, y, config, rng)?),
        ModelKind::IsolationForest(config) => Box::new(IsolationForest::fit(x, y, config, rng)?),
        ModelKind::Autoencoder(config) => Box::new(Autoencoder::fit(x, y, config, rng)?),
    })
}

/// Trains the concrete model on the rows of a matrix view — the
/// zero-copy companion of [`train_model`], used with
/// [`FeatureMatrix::subset`] splits.
pub fn train_model_view(
    kind: &ModelKind,
    view: MatrixView<'_>,
    y: &[usize],
    rng: &mut SimRng,
) -> Result<Box<dyn Classifier>, TrainError> {
    Ok(match kind {
        ModelKind::RandomForest(config) => Box::new(RandomForest::fit_view(view, y, config, rng)?),
        ModelKind::KMeans(config) => Box::new(KMeansDetector::fit_view(view, y, config, rng)?),
        ModelKind::Cnn(config) => Box::new(Cnn::fit_view(view, y, config, rng)?),
        ModelKind::Svm(config) => Box::new(LinearSvm::fit_view(view, y, config, rng)?),
        ModelKind::IsolationForest(config) => {
            Box::new(IsolationForest::fit_view(view, y, config, rng)?)
        }
        ModelKind::Autoencoder(config) => Box::new(Autoencoder::fit_view(view, y, config, rng)?),
    })
}

/// Caps sample indices at `max`, stratified by class.
fn stratified_cap(indices: &[usize], y: &[usize], max: usize, rng: &mut SimRng) -> Vec<usize> {
    if indices.len() <= max {
        return indices.to_vec();
    }
    let mut by_class: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for &i in indices {
        by_class[y[i].min(1)].push(i);
    }
    let frac = max as f64 / indices.len() as f64;
    let mut out = Vec::with_capacity(max);
    for class in &mut by_class {
        rng.shuffle(class);
        let take = ((class.len() as f64 * frac).round() as usize).min(class.len());
        out.extend_from_slice(&class[..take]);
    }
    out.sort_unstable();
    out
}

/// One window's real-time detection result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowDetection {
    /// Window index on the virtual clock.
    pub window_index: u64,
    /// Packets classified.
    pub packets: usize,
    /// Correctly classified packets.
    pub correct: usize,
    /// Packets predicted malicious.
    pub predicted_malicious: usize,
    /// Packets actually malicious.
    pub truth_malicious: usize,
    /// Malicious packets correctly flagged (for recall).
    pub malicious_correct: usize,
    /// Whether the window mixed both classes (attack boundary).
    pub mixed: bool,
    /// The window's majority ground truth.
    pub majority_truth: Label,
    /// Model generation that scored this window (0 for the initial
    /// model; bumped by every hot-swap — see `ml::handle::SwapHandle`).
    /// Every window is classified by exactly one generation.
    #[serde(default)]
    pub generation: u64,
    /// `true` if the detector's modelled compute for this window
    /// exceeded the window interval (overload): the result is still
    /// recorded, but it arrived late and downstream consumers should
    /// treat it as best-effort.
    pub degraded: bool,
}

impl WindowDetection {
    /// Per-window packet accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.packets == 0 {
            1.0
        } else {
            self.correct as f64 / self.packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capture::record::PacketRecord;
    use netsim::packet::{Protocol, TcpFlags};
    use netsim::time::SimTime;
    use netsim::Addr;

    /// Builds a synthetic capture alternating benign seconds (diverse
    /// ports, handshakes) and attack seconds (SYN flood signature).
    fn synthetic_capture(seconds: u64, attack_every: u64) -> Dataset {
        let mut records = Vec::new();
        for s in 0..seconds {
            let attack = s % attack_every == attack_every - 1;
            for i in 0..40u32 {
                let ts = SimTime::from_millis(s * 1000 + (i as u64) * 20);
                let record = if attack {
                    PacketRecord {
                        ts,
                        src: Addr::new(10, 0, 0, (10 + i % 5) as u8),
                        src_port: 2000 + (i * 131 % 5000) as u16,
                        dst: Addr::new(10, 0, 0, 2),
                        dst_port: 80,
                        protocol: Protocol::Tcp,
                        flags: TcpFlags::SYN,
                        wire_len: 40,
                        payload_len: 0,
                        seq: i.wrapping_mul(2_654_435_761),
                        label: Label::Malicious,
                    }
                } else {
                    PacketRecord {
                        ts,
                        src: Addr::new(10, 0, 0, (3 + i % 3) as u8),
                        src_port: 50_000 + (i % 3) as u16,
                        dst: Addr::new(10, 0, 0, 2),
                        dst_port: [80u16, 1935, 21][(i % 3) as usize],
                        protocol: Protocol::Tcp,
                        flags: TcpFlags::ACK | TcpFlags::PSH,
                        wire_len: 200 + i % 7 * 100,
                        payload_len: 160,
                        seq: 1000 + i * 160,
                        label: Label::Benign,
                    }
                };
                records.push(record);
            }
        }
        Dataset::from_records(records)
    }

    #[test]
    fn all_three_models_train_and_detect() {
        let capture = synthetic_capture(30, 3);
        let config = IdsConfig { max_train_samples: 2_000, ..IdsConfig::default() };
        for kind in [
            ModelKind::RandomForest(ForestConfig { n_trees: 10, ..Default::default() }),
            ModelKind::KMeans(KMeansConfig::default()),
            ModelKind::Cnn(CnnConfig { epochs: 4, ..CnnConfig::default() }),
        ] {
            let mut rng = SimRng::seed_from(11);
            let outcome = TrainedIds::train(&capture, &kind, config, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
            assert!(
                outcome.holdout_metrics.accuracy > 0.9,
                "{} holdout accuracy {}",
                kind.name(),
                outcome.holdout_metrics.accuracy
            );
            // Real-time detection on fresh windows of the same shape.
            let live = synthetic_capture(12, 3);
            let windows = features::extract::windows_of(&live, 1);
            let mut correct = 0usize;
            let mut total = 0usize;
            for w in &windows {
                let det = outcome.ids.classify_window(w);
                correct += det.correct;
                total += det.packets;
            }
            let acc = correct as f64 / total as f64;
            assert!(acc > 0.85, "{} live accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn stratified_cap_respects_limit_and_classes() {
        let mut rng = SimRng::seed_from(3);
        let y: Vec<usize> = (0..1000).map(|i| usize::from(i % 4 == 0)).collect();
        let indices: Vec<usize> = (0..1000).collect();
        let capped = stratified_cap(&indices, &y, 100, &mut rng);
        assert!(capped.len() <= 101);
        let positives = capped.iter().filter(|&&i| y[i] == 1).count();
        let frac = positives as f64 / capped.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "stratification kept class balance: {frac}");
    }

    #[test]
    fn window_detection_accuracy() {
        let det = WindowDetection {
            window_index: 0,
            packets: 10,
            correct: 7,
            predicted_malicious: 5,
            truth_malicious: 6,
            malicious_correct: 4,
            mixed: true,
            majority_truth: Label::Malicious,
            generation: 0,
            degraded: false,
        };
        assert!((det.accuracy() - 0.7).abs() < 1e-12);
        let empty = WindowDetection { packets: 0, correct: 0, ..det };
        assert_eq!(empty.accuracy(), 1.0);
    }

    #[test]
    fn arity_mismatch_is_an_error_not_a_panic() {
        // A model assembled from an incompatible pipeline (2-feature
        // scaler vs. the TOTAL_FEATURES layout) must come back as a
        // recoverable ClassifyError so a bad hot-swap degrades windows
        // instead of killing the serving loop.
        let mut rows = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 5.0]];
        let labels = vec![0usize, 0, 1, 1];
        let mut rng = SimRng::seed_from(9);
        let bad_scaler = Scaler::fit_transform(ScalingMethod::MinMax, &mut rows);
        let model = train_model(
            &ModelKind::KMeans(KMeansConfig { k_max: 2, ..KMeansConfig::default() }),
            &rows,
            &labels,
            &mut rng,
        )
        .unwrap();
        let bad_ids = TrainedIds::from_parts(model, bad_scaler, IdsConfig::default());

        let live = synthetic_capture(2, 2);
        let windows = features::extract::windows_of(&live, 1);
        let mut scratch = FeatureMatrix::new(TOTAL_FEATURES);
        let mut predictions = Vec::new();
        let err = bad_ids
            .try_classify_window_profiled(&windows[0], &mut scratch, &mut predictions)
            .unwrap_err();
        assert_eq!(err, ClassifyError::ScalerArity { expected: TOTAL_FEATURES, got: 2 });
        assert!(err.to_string().contains("scaler fitted for 2 features"));

        // Wrong scratch arity is likewise recoverable.
        let good = synthetic_capture(6, 3);
        let mut rng = SimRng::seed_from(10);
        let outcome = TrainedIds::train(
            &good,
            &ModelKind::KMeans(KMeansConfig::default()),
            IdsConfig { max_train_samples: 2_000, ..IdsConfig::default() },
            &mut rng,
        )
        .unwrap();
        let mut bad_scratch = FeatureMatrix::new(3);
        let err = outcome
            .ids
            .try_classify_window_profiled(&windows[0], &mut bad_scratch, &mut predictions)
            .unwrap_err();
        assert_eq!(err, ClassifyError::ScratchArity { expected: TOTAL_FEATURES, got: 3 });
    }

    #[test]
    fn training_on_empty_capture_errors() {
        let mut rng = SimRng::seed_from(4);
        let err = TrainedIds::train(
            &Dataset::new(),
            &ModelKind::KMeans(KMeansConfig::default()),
            IdsConfig::default(),
            &mut rng,
        );
        assert!(err.is_err());
    }
}
