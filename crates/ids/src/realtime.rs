//! The Real-Time IDS Unit: the fourth container of DDoShield-IoT.
//!
//! [`RealTimeIds`] is a hosted application that wakes every window
//! interval, drains the sniffer feed, aggregates the elapsed window,
//! extracts features, runs the configured model, and logs the window's
//! accuracy — while metering its *actual* compute time and memory
//! footprint into the container's [`ResourceMeter`] (the paper's
//! sustainability metrics are measured on exactly this loop).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use capture::record::{Label, PacketRecord};
use capture::sniffer::SnifferHandle;
use containers::meter::ResourceMeter;
use features::extract::{WindowAggregator, TOTAL_FEATURES};
use ml::classifier::RowSpan;
use ml::matrix::FeatureMatrix;
use netsim::time::SimDuration;
use netsim::world::{App, Ctx};
use obs::{pow2_bounds, Counter, Histogram, Scope};

use crate::pipeline::{detection_from_predictions, TrainedIds, WindowDetection};

/// Shared log of per-window detection results.
#[derive(Debug, Clone, Default)]
pub struct DetectionLog {
    inner: Rc<RefCell<Vec<WindowDetection>>>,
}

impl DetectionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one window's result.
    pub fn push(&self, detection: WindowDetection) {
        self.inner.borrow_mut().push(detection);
    }

    /// A copy of all results so far, in window order.
    pub fn results(&self) -> Vec<WindowDetection> {
        self.inner.borrow().clone()
    }

    /// Number of windows logged.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Mean per-window accuracy (the paper's Table I number).
    pub fn mean_accuracy(&self) -> f64 {
        let results = self.inner.borrow();
        if results.is_empty() {
            return 0.0;
        }
        results.iter().map(WindowDetection::accuracy).sum::<f64>() / results.len() as f64
    }

    /// The worst window accuracy (the paper's reported 35 % minimum).
    pub fn min_accuracy(&self) -> f64 {
        self.inner
            .borrow()
            .iter()
            .map(WindowDetection::accuracy)
            .fold(f64::INFINITY, f64::min)
    }

    /// Overall malicious-packet recall: the fraction of all malicious
    /// packets in the run that were flagged (`None` if none occurred).
    pub fn malicious_recall(&self) -> Option<f64> {
        let results = self.inner.borrow();
        let truth: usize = results.iter().map(|d| d.truth_malicious).sum();
        if truth == 0 {
            return None;
        }
        let caught: usize = results.iter().map(|d| d.malicious_correct).sum();
        Some(caught as f64 / truth as f64)
    }

    /// Mean accuracy over mixed (attack-boundary) windows only.
    pub fn mean_accuracy_mixed(&self) -> Option<f64> {
        let results = self.inner.borrow();
        let mixed: Vec<f64> =
            results.iter().filter(|d| d.mixed).map(WindowDetection::accuracy).collect();
        if mixed.is_empty() {
            None
        } else {
            Some(mixed.iter().sum::<f64>() / mixed.len() as f64)
        }
    }

    /// Mean accuracy over single-class windows only.
    pub fn mean_accuracy_pure(&self) -> Option<f64> {
        let results = self.inner.borrow();
        let pure: Vec<f64> =
            results.iter().filter(|d| !d.mixed).map(WindowDetection::accuracy).collect();
        if pure.is_empty() {
            None
        } else {
            Some(pure.iter().sum::<f64>() / pure.len() as f64)
        }
    }

    /// Number of windows whose detection ran overloaded.
    pub fn degraded_count(&self) -> usize {
        self.inner.borrow().iter().filter(|d| d.degraded).count()
    }

    /// The distinct model generations that scored windows, in first-use
    /// order (a hot-swap run reports more than one).
    pub fn generations(&self) -> Vec<u64> {
        let results = self.inner.borrow();
        let mut out: Vec<u64> = Vec::new();
        for d in results.iter() {
            if out.last() != Some(&d.generation) {
                out.push(d.generation);
            }
        }
        out
    }

    /// Checks the serving-layer generation invariant: model generations
    /// stamped into the log must be non-decreasing (swaps happen at
    /// window boundaries only, and a window is never scored by a mix of
    /// generations — each carries exactly one). Returns the first
    /// violation, or `None` when the log is sane.
    pub fn generation_violation(&self) -> Option<String> {
        let results = self.inner.borrow();
        let mut prev: Option<u64> = None;
        for d in results.iter() {
            if let Some(p) = prev {
                if d.generation < p {
                    return Some(format!(
                        "window {} scored by generation {} after generation {}",
                        d.window_index, d.generation, p
                    ));
                }
            }
            prev = Some(d.generation);
        }
        None
    }

    /// Checks the IDS liveness invariant for swarm runs: window indices
    /// strictly increase (no window is processed twice or out of order,
    /// none regresses), and every logged window carries a terminal
    /// verdict — it was classified over at least one packet, or was
    /// explicitly marked degraded. Returns the first violation as a
    /// human-readable description, or `None` when the log is sane.
    pub fn liveness_violation(&self) -> Option<String> {
        let results = self.inner.borrow();
        let mut prev: Option<u64> = None;
        for d in results.iter() {
            if let Some(p) = prev {
                if d.window_index <= p {
                    return Some(format!(
                        "window index regressed: {} after {}",
                        d.window_index, p
                    ));
                }
            }
            prev = Some(d.window_index);
            if d.packets == 0 && !d.degraded {
                return Some(format!(
                    "window {} terminated with no packets and no degraded mark",
                    d.window_index
                ));
            }
            if d.correct > d.packets {
                return Some(format!(
                    "window {} claims {} correct of {} packets",
                    d.window_index, d.correct, d.packets
                ));
            }
        }
        None
    }

    /// Serialises the log as stable, human-diffable text: one line per
    /// window, integer fields only, in window order. Two runs of the
    /// same seeded scenario must produce byte-identical output — CI
    /// diffs this to catch determinism regressions.
    pub fn serialize_compact(&self) -> String {
        use std::fmt::Write as _;
        let results = self.inner.borrow();
        let mut out = String::with_capacity(results.len() * 64);
        for d in results.iter() {
            let maj = match d.majority_truth {
                Label::Benign => 'B',
                Label::Malicious => 'M',
            };
            writeln!(
                out,
                "w={} p={} c={} pm={} tm={} mc={} mixed={} maj={} gen={} deg={}",
                d.window_index,
                d.packets,
                d.correct,
                d.predicted_malicious,
                d.truth_malicious,
                d.malicious_correct,
                u8::from(d.mixed),
                maj,
                d.generation,
                u8::from(d.degraded),
            )
            .expect("writing to String cannot fail");
        }
        out
    }
}

/// Deterministic model of the detector's per-window compute cost.
///
/// The real loop's wall-clock time (`Instant`) feeds the sustainability
/// meter but may *never* influence control flow — that would make runs
/// host-dependent. Overload is instead decided from this modelled cost
/// scaled by the node's injected CPU pressure
/// ([`netsim::world::Ctx::cpu_pressure`]): a window whose modelled
/// detection time exceeds the window interval is marked
/// [`degraded`](WindowDetection::degraded) instead of silently skewing
/// the next drain.
#[derive(Debug, Clone, Copy)]
pub struct OverloadPolicy {
    /// Modelled cost per classified packet, in seconds.
    pub per_packet_cost_secs: f64,
    /// Modelled fixed cost per window (drain + aggregation), in seconds.
    pub per_window_overhead_secs: f64,
    /// Bound applied to the sniffer feed on start: packets arriving
    /// while this many records are undrained are dropped (and counted
    /// by the sniffer) rather than growing the buffer without limit.
    /// `None` leaves the feed unbounded.
    pub feed_capacity: Option<usize>,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            per_packet_cost_secs: 2e-6,
            per_window_overhead_secs: 1e-4,
            feed_capacity: Some(65_536),
        }
    }
}

impl OverloadPolicy {
    /// Modelled detection time for a window of `packets` packets on a
    /// node under `pressure` (1.0 = unloaded).
    pub fn modelled_cost_secs(&self, packets: usize, pressure: f64) -> f64 {
        (self.per_window_overhead_secs + self.per_packet_cost_secs * packets as f64)
            * pressure.max(0.0)
    }
}

/// Telemetry for the per-window detection loop. Every figure is
/// deterministic: stage timings come from the modelled cost under
/// injected pressure (the same numbers that decide degradation), and the
/// predict-path profile counts model work units — wall-clock time never
/// enters, so the export stays byte-identical across same-seed runs.
#[derive(Debug)]
struct IdsObs {
    scope: Scope,
    windows: Counter,
    packets_classified: Counter,
    budget_exceeded: Counter,
    classify_errors: Counter,
    extract_ns: Histogram,
    classify_ns: Histogram,
    predict_work: Histogram,
    /// Flow-state cardinality reported by the incremental extractor
    /// (`features.incremental.flows_touched`): distinct flows folded at
    /// each window close, summed over the run.
    flows_touched: Counter,
}

impl IdsObs {
    fn new(scope: Scope) -> Self {
        // Modelled stage costs: ~1 µs up to ~17 s of modelled time.
        let ns_bounds = pow2_bounds(10, 34);
        // Predict work units (nodes / MACs / distance ops) per window.
        let work_bounds = pow2_bounds(4, 30);
        let incremental = scope.registry().scope("features.incremental");
        IdsObs {
            windows: scope.counter("windows"),
            packets_classified: scope.counter("packets_classified"),
            budget_exceeded: scope.counter("budget_exceeded"),
            classify_errors: scope.counter("classify_errors"),
            extract_ns: scope.histogram("extract_modelled_ns", &ns_bounds),
            classify_ns: scope.histogram("classify_modelled_ns", &ns_bounds),
            predict_work: scope.histogram("predict_work_units", &work_bounds),
            flows_touched: incremental.counter("flows_touched"),
            scope,
        }
    }
}

/// Wall-clock telemetry for the predict hot path, kept in a registry
/// *separate* from the deterministic one: the measured latency is
/// host-dependent by nature, so it must never share an export with the
/// byte-identity-pinned metrics. One histogram per model, named after
/// the model (`<Model>.predict_wall_ns`), makes the batch-predict
/// speedups visible in exported telemetry rather than only in criterion
/// output.
#[derive(Debug)]
struct WallclockObs {
    predict_wall_ns: Histogram,
}

impl WallclockObs {
    fn new(scope: &Scope, model: &str) -> Self {
        // Measured predict latency: ~0.25 µs up to ~17 s.
        let ns_bounds = pow2_bounds(8, 34);
        WallclockObs {
            predict_wall_ns: scope.child(model).histogram("predict_wall_ns", &ns_bounds),
        }
    }
}

/// The real-time IDS application hosted in the IDS container.
pub struct RealTimeIds {
    ids: TrainedIds,
    feed: SnifferHandle,
    aggregator: WindowAggregator,
    meter: ResourceMeter,
    log: DetectionLog,
    overload: OverloadPolicy,
    /// Feature scratch reused every window — the steady-state detection
    /// loop performs no per-window feature allocation.
    scratch: FeatureMatrix,
    /// Prediction scratch reused every tick: one coalesced
    /// [`ml::classifier::Classifier::predict_batch_spans_into`] pass
    /// covers every window the tick completed.
    predictions: Vec<usize>,
    /// Per-window row spans into `scratch` for the coalesced pass.
    spans: Vec<RowSpan>,
    /// Per-window predict work returned by the span API, so the
    /// per-window telemetry attribution survives batching.
    span_work: Vec<u64>,
    /// `aggregator.flows_touched()` at the last telemetry top-up.
    flows_touched_reported: u64,
    /// Drain scratch swapped with the sniffer buffer every tick
    /// ([`SnifferHandle::drain_into`]), so the feed ping-pongs two
    /// buffers instead of allocating one per window.
    drain_buf: Vec<PacketRecord>,
    obs: Option<IdsObs>,
    wall_obs: Option<WallclockObs>,
}

impl std::fmt::Debug for RealTimeIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTimeIds").field("model", &self.ids.model().name()).finish()
    }
}

impl RealTimeIds {
    /// Creates the IDS app over a trained model and a sniffer feed,
    /// with the default [`OverloadPolicy`].
    pub fn new(ids: TrainedIds, feed: SnifferHandle, meter: ResourceMeter, log: DetectionLog) -> Self {
        Self::with_overload(ids, feed, meter, log, OverloadPolicy::default())
    }

    /// Creates the IDS app with an explicit overload policy.
    pub fn with_overload(
        ids: TrainedIds,
        feed: SnifferHandle,
        meter: ResourceMeter,
        log: DetectionLog,
        overload: OverloadPolicy,
    ) -> Self {
        let window_secs = ids.window_secs();
        let refresh = ids.stats_refresh();
        // The model's resident footprint counts against the container.
        meter.set_memory_bytes(ids.model().memory_bytes());
        RealTimeIds {
            ids,
            feed,
            aggregator: WindowAggregator::new(window_secs).with_stats_refresh(refresh),
            meter,
            log,
            overload,
            scratch: FeatureMatrix::new(TOTAL_FEATURES),
            predictions: Vec::new(),
            spans: Vec::new(),
            span_work: Vec::new(),
            flows_touched_reported: 0,
            drain_buf: Vec::new(),
            obs: None,
            wall_obs: None,
        }
    }

    /// Attaches telemetry (call before installing the app): per-window
    /// stage histograms, the predict-path work profile, and a trace
    /// event for every window whose modelled cost blows the interval
    /// budget.
    pub fn set_obs(&mut self, scope: Scope) {
        self.obs = Some(IdsObs::new(scope));
    }

    /// Attaches the wall-clock reporting scope (call before installing
    /// the app). Must come from a registry separate from the
    /// deterministic one — measured predict latency is host-dependent
    /// and would break byte-identical telemetry exports if mixed in.
    pub fn set_wallclock_obs(&mut self, scope: Scope) {
        self.wall_obs = Some(WallclockObs::new(&scope, self.ids.model().name()));
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let started = Instant::now();
        let mut completed = Vec::new();
        self.feed.drain_into(&mut self.drain_buf);
        for &record in &self.drain_buf {
            if let Some(window) = self.aggregator.push(record) {
                completed.push(window);
            }
        }
        // Overload is decided from the modelled cost under the node's
        // injected CPU pressure — never from wall-clock time, which
        // would make the detection log host-dependent.
        let pressure = ctx.cpu_pressure();
        let window_interval_secs = self.ids.window_secs() as f64;
        let mut buffered_bytes = 0u64;
        // Coalesce every window the tick completed into one feature
        // matrix and a single span-batched predict pass; the span API
        // returns per-window work, so telemetry attribution stays
        // per-window even though the model runs once per tick. An arity
        // failure (e.g. an incompatible model assembled via from_parts)
        // is recoverable: it poisons the whole batch, and each window is
        // logged as degraded with zero classified packets.
        self.scratch.clear();
        self.spans.clear();
        let arity = self.ids.check_classify_arity(&self.scratch);
        if arity.is_ok() {
            let mut row_start = 0;
            for window in &completed {
                window.append_features(&mut self.scratch);
                let len = self.scratch.n_rows() - row_start;
                self.spans.push(RowSpan { start: row_start, len });
                row_start += len;
            }
            self.ids.scaler().transform_matrix(&mut self.scratch);
            let predict_started = Instant::now();
            self.ids.model().predict_batch_spans_into(
                self.scratch.view(),
                &self.spans,
                &mut self.predictions,
                &mut self.span_work,
            );
            if !completed.is_empty() {
                if let Some(wall) = &self.wall_obs {
                    wall.predict_wall_ns.observe(predict_started.elapsed().as_nanos() as u64);
                }
            }
        }
        for (slot, window) in completed.iter().enumerate() {
            if let Err(e) = &arity {
                if let Some(obs) = &self.obs {
                    obs.classify_errors.inc();
                    obs.windows.inc();
                    obs.scope.event(
                        ctx.now().as_nanos(),
                        "classify_error",
                        format!("w={} {e}", window.index),
                    );
                }
                self.log.push(WindowDetection {
                    window_index: window.index,
                    packets: window.records.len(),
                    correct: 0,
                    predicted_malicious: 0,
                    truth_malicious: 0,
                    malicious_correct: 0,
                    mixed: window.is_mixed(),
                    majority_truth: window.majority_label(),
                    generation: 0,
                    degraded: true,
                });
                continue;
            }
            let span = self.spans[slot];
            let mut detection =
                detection_from_predictions(window, &self.predictions[span.range()]);
            let modelled_secs = self.overload.modelled_cost_secs(window.records.len(), pressure);
            detection.degraded = modelled_secs > window_interval_secs;
            buffered_bytes += window.records.len() as u64 * 64; // record footprint
            if let Some(obs) = &self.obs {
                obs.windows.inc();
                obs.packets_classified.add(window.records.len() as u64);
                // Stage split of the modelled budget: the fixed overhead
                // is the drain/extract stage, the per-packet term is
                // classification.
                let load = pressure.max(0.0);
                let extract_ns = (self.overload.per_window_overhead_secs * load * 1e9) as u64;
                let classify_ns = (self.overload.per_packet_cost_secs
                    * window.records.len() as f64
                    * load
                    * 1e9) as u64;
                obs.extract_ns.observe(extract_ns);
                obs.classify_ns.observe(classify_ns);
                obs.predict_work.observe(self.span_work[slot]);
                if detection.degraded {
                    obs.budget_exceeded.inc();
                    obs.scope.event(
                        ctx.now().as_nanos(),
                        "degraded_window",
                        format!("w={} packets={}", detection.window_index, detection.packets),
                    );
                }
            }
            self.log.push(detection);
        }
        // Top up the incremental extractor's flow-state counter with the
        // flows folded since the last tick (the aggregator reports a
        // cumulative total).
        if let Some(obs) = &self.obs {
            let touched = self.aggregator.flows_touched();
            obs.flows_touched.add(touched - self.flows_touched_reported);
            self.flows_touched_reported = touched;
        }
        // Wall-clock busy time, stretched by the injected pressure,
        // feeds the sustainability meter only (reporting, not control).
        let busy = started.elapsed().as_secs_f64();
        self.meter.record_cpu_seconds(busy * pressure.max(0.0));
        self.meter
            .set_memory_bytes(self.ids.model().memory_bytes() + buffered_bytes);

        // Close this observation interval (its CPU sample includes the
        // work just recorded) and open the next one.
        self.meter.end_window(ctx.now());
        self.meter.begin_window(ctx.now());
        ctx.set_timer(SimDuration::from_secs(self.ids.window_secs()), 0);
    }
}

impl App for RealTimeIds {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(capacity) = self.overload.feed_capacity {
            self.feed.set_capacity(Some(capacity));
        }
        self.meter.begin_window(ctx.now());
        ctx.set_timer(SimDuration::from_secs(self.ids.window_secs()), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.tick(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capture::record::Label;
    use crate::pipeline::WindowDetection;

    fn detection(acc_num: usize, packets: usize, mixed: bool) -> WindowDetection {
        WindowDetection {
            window_index: 0,
            packets,
            correct: acc_num,
            predicted_malicious: 0,
            truth_malicious: 0,
            malicious_correct: 0,
            mixed,
            majority_truth: Label::Benign,
            generation: 0,
            degraded: false,
        }
    }

    #[test]
    fn log_statistics() {
        let log = DetectionLog::new();
        log.push(detection(10, 10, false)); // 1.0
        log.push(detection(5, 10, true)); // 0.5
        log.push(detection(8, 10, false)); // 0.8
        assert_eq!(log.len(), 3);
        assert!((log.mean_accuracy() - (1.0 + 0.5 + 0.8) / 3.0).abs() < 1e-12);
        assert!((log.min_accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(log.mean_accuracy_mixed(), Some(0.5));
        assert!((log.mean_accuracy_pure().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_safe() {
        let log = DetectionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.mean_accuracy(), 0.0);
        assert_eq!(log.mean_accuracy_mixed(), None);
    }

    #[test]
    fn log_handles_share_state() {
        let a = DetectionLog::new();
        let b = a.clone();
        b.push(detection(1, 1, false));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn degraded_windows_are_counted() {
        let log = DetectionLog::new();
        log.push(detection(1, 1, false));
        log.push(WindowDetection { degraded: true, ..detection(2, 2, false) });
        assert_eq!(log.degraded_count(), 1);
    }

    #[test]
    fn serialize_compact_is_stable_text() {
        let log = DetectionLog::new();
        log.push(WindowDetection {
            window_index: 3,
            packets: 10,
            correct: 9,
            predicted_malicious: 4,
            truth_malicious: 5,
            malicious_correct: 4,
            mixed: true,
            majority_truth: Label::Malicious,
            generation: 2,
            degraded: true,
        });
        log.push(detection(1, 1, false));
        let text = log.serialize_compact();
        assert_eq!(
            text,
            "w=3 p=10 c=9 pm=4 tm=5 mc=4 mixed=1 maj=M gen=2 deg=1\n\
             w=0 p=1 c=1 pm=0 tm=0 mc=0 mixed=0 maj=B gen=0 deg=0\n"
        );
        // Identical logs serialise byte-identically.
        let again = log.serialize_compact();
        assert_eq!(text, again);
    }

    #[test]
    fn liveness_violation_flags_regression_and_lost_windows() {
        let sane = DetectionLog::new();
        sane.push(WindowDetection { window_index: 1, ..detection(1, 1, false) });
        sane.push(WindowDetection { window_index: 2, ..detection(2, 2, false) });
        assert_eq!(sane.liveness_violation(), None);

        let regressed = DetectionLog::new();
        regressed.push(WindowDetection { window_index: 5, ..detection(1, 1, false) });
        regressed.push(WindowDetection { window_index: 5, ..detection(1, 1, false) });
        assert!(regressed.liveness_violation().unwrap().contains("regressed"));

        let lost = DetectionLog::new();
        lost.push(WindowDetection { window_index: 1, packets: 0, ..detection(0, 0, false) });
        assert!(lost.liveness_violation().unwrap().contains("no packets"));

        let degraded_empty = DetectionLog::new();
        degraded_empty.push(WindowDetection {
            window_index: 1,
            degraded: true,
            ..detection(0, 0, false)
        });
        assert_eq!(degraded_empty.liveness_violation(), None, "degraded counts as terminal");
    }

    #[test]
    fn generation_tracking_and_violation() {
        let log = DetectionLog::new();
        log.push(WindowDetection { window_index: 1, generation: 0, ..detection(1, 1, false) });
        log.push(WindowDetection { window_index: 2, generation: 0, ..detection(1, 1, false) });
        log.push(WindowDetection { window_index: 3, generation: 1, ..detection(1, 1, false) });
        assert_eq!(log.generations(), vec![0, 1]);
        assert_eq!(log.generation_violation(), None);

        let regressed = DetectionLog::new();
        regressed
            .push(WindowDetection { window_index: 1, generation: 2, ..detection(1, 1, false) });
        regressed
            .push(WindowDetection { window_index: 2, generation: 1, ..detection(1, 1, false) });
        let v = regressed.generation_violation().unwrap();
        assert!(v.contains("generation 1 after generation 2"), "{v}");
    }

    #[test]
    fn overload_policy_scales_with_pressure() {
        let policy = OverloadPolicy::default();
        // Unloaded: 1 000 packets cost ~2.1 ms, far below a 1 s window.
        assert!(policy.modelled_cost_secs(1_000, 1.0) < 1.0);
        // A 500× pressure spike pushes the same window past the interval.
        assert!(policy.modelled_cost_secs(1_000, 500.0) > 1.0);
    }
}
