//! The Real-Time IDS Unit: the fourth container of DDoShield-IoT.
//!
//! [`RealTimeIds`] is a hosted application that wakes every window
//! interval, drains the sniffer feed, aggregates the elapsed window,
//! extracts features, runs the configured model, and logs the window's
//! accuracy — while metering its *actual* compute time and memory
//! footprint into the container's [`ResourceMeter`] (the paper's
//! sustainability metrics are measured on exactly this loop).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use capture::sniffer::SnifferHandle;
use containers::meter::ResourceMeter;
use features::extract::{WindowAggregator, TOTAL_FEATURES};
use ml::matrix::FeatureMatrix;
use netsim::time::SimDuration;
use netsim::world::{App, Ctx};

use crate::pipeline::{TrainedIds, WindowDetection};

/// Shared log of per-window detection results.
#[derive(Debug, Clone, Default)]
pub struct DetectionLog {
    inner: Rc<RefCell<Vec<WindowDetection>>>,
}

impl DetectionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one window's result.
    pub fn push(&self, detection: WindowDetection) {
        self.inner.borrow_mut().push(detection);
    }

    /// A copy of all results so far, in window order.
    pub fn results(&self) -> Vec<WindowDetection> {
        self.inner.borrow().clone()
    }

    /// Number of windows logged.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Mean per-window accuracy (the paper's Table I number).
    pub fn mean_accuracy(&self) -> f64 {
        let results = self.inner.borrow();
        if results.is_empty() {
            return 0.0;
        }
        results.iter().map(WindowDetection::accuracy).sum::<f64>() / results.len() as f64
    }

    /// The worst window accuracy (the paper's reported 35 % minimum).
    pub fn min_accuracy(&self) -> f64 {
        self.inner
            .borrow()
            .iter()
            .map(WindowDetection::accuracy)
            .fold(f64::INFINITY, f64::min)
    }

    /// Overall malicious-packet recall: the fraction of all malicious
    /// packets in the run that were flagged (`None` if none occurred).
    pub fn malicious_recall(&self) -> Option<f64> {
        let results = self.inner.borrow();
        let truth: usize = results.iter().map(|d| d.truth_malicious).sum();
        if truth == 0 {
            return None;
        }
        let caught: usize = results.iter().map(|d| d.malicious_correct).sum();
        Some(caught as f64 / truth as f64)
    }

    /// Mean accuracy over mixed (attack-boundary) windows only.
    pub fn mean_accuracy_mixed(&self) -> Option<f64> {
        let results = self.inner.borrow();
        let mixed: Vec<f64> =
            results.iter().filter(|d| d.mixed).map(WindowDetection::accuracy).collect();
        if mixed.is_empty() {
            None
        } else {
            Some(mixed.iter().sum::<f64>() / mixed.len() as f64)
        }
    }

    /// Mean accuracy over single-class windows only.
    pub fn mean_accuracy_pure(&self) -> Option<f64> {
        let results = self.inner.borrow();
        let pure: Vec<f64> =
            results.iter().filter(|d| !d.mixed).map(WindowDetection::accuracy).collect();
        if pure.is_empty() {
            None
        } else {
            Some(pure.iter().sum::<f64>() / pure.len() as f64)
        }
    }
}

/// The real-time IDS application hosted in the IDS container.
pub struct RealTimeIds {
    ids: TrainedIds,
    feed: SnifferHandle,
    aggregator: WindowAggregator,
    meter: ResourceMeter,
    log: DetectionLog,
    /// Feature scratch reused every window — the steady-state detection
    /// loop performs no per-window feature allocation.
    scratch: FeatureMatrix,
}

impl std::fmt::Debug for RealTimeIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTimeIds").field("model", &self.ids.model().name()).finish()
    }
}

impl RealTimeIds {
    /// Creates the IDS app over a trained model and a sniffer feed.
    pub fn new(ids: TrainedIds, feed: SnifferHandle, meter: ResourceMeter, log: DetectionLog) -> Self {
        let window_secs = ids.window_secs();
        let refresh = ids.stats_refresh();
        // The model's resident footprint counts against the container.
        meter.set_memory_bytes(ids.model().memory_bytes());
        RealTimeIds {
            ids,
            feed,
            aggregator: WindowAggregator::new(window_secs).with_stats_refresh(refresh),
            meter,
            log,
            scratch: FeatureMatrix::new(TOTAL_FEATURES),
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let started = Instant::now();
        let mut completed = Vec::new();
        for record in self.feed.drain() {
            if let Some(window) = self.aggregator.push(record) {
                completed.push(window);
            }
        }
        // Feature extraction + inference, measured for the CPU metric.
        let mut buffered_bytes = 0u64;
        for window in &completed {
            let detection = self.ids.classify_window_into(window, &mut self.scratch);
            buffered_bytes += window.records.len() as u64 * 64; // record footprint
            self.log.push(detection);
        }
        let busy = started.elapsed().as_secs_f64();
        self.meter.record_cpu_seconds(busy);
        self.meter
            .set_memory_bytes(self.ids.model().memory_bytes() + buffered_bytes);

        // Close this observation interval (its CPU sample includes the
        // work just recorded) and open the next one.
        self.meter.end_window(ctx.now());
        self.meter.begin_window(ctx.now());
        ctx.set_timer(SimDuration::from_secs(self.ids.window_secs()), 0);
    }
}

impl App for RealTimeIds {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.meter.begin_window(ctx.now());
        ctx.set_timer(SimDuration::from_secs(self.ids.window_secs()), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.tick(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capture::record::Label;
    use crate::pipeline::WindowDetection;

    fn detection(acc_num: usize, packets: usize, mixed: bool) -> WindowDetection {
        WindowDetection {
            window_index: 0,
            packets,
            correct: acc_num,
            predicted_malicious: 0,
            truth_malicious: 0,
            malicious_correct: 0,
            mixed,
            majority_truth: Label::Benign,
        }
    }

    #[test]
    fn log_statistics() {
        let log = DetectionLog::new();
        log.push(detection(10, 10, false)); // 1.0
        log.push(detection(5, 10, true)); // 0.5
        log.push(detection(8, 10, false)); // 0.8
        assert_eq!(log.len(), 3);
        assert!((log.mean_accuracy() - (1.0 + 0.5 + 0.8) / 3.0).abs() < 1e-12);
        assert!((log.min_accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(log.mean_accuracy_mixed(), Some(0.5));
        assert!((log.mean_accuracy_pure().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_safe() {
        let log = DetectionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.mean_accuracy(), 0.0);
        assert_eq!(log.mean_accuracy_mixed(), None);
    }

    #[test]
    fn log_handles_share_state() {
        let a = DetectionLog::new();
        let b = a.clone();
        b.push(detection(1, 1, false));
        assert_eq!(a.len(), 1);
    }
}
