//! Alerting on top of per-window detection: attack episodes and
//! time-to-detect.
//!
//! The paper evaluates per-window accuracy; an operator additionally
//! needs *alerts*: contiguous attack episodes with a start, an end, and
//! a detection latency. [`AlertPolicy`] turns the window stream into
//! episodes with the classic m-of-n smoothing (an alert fires when at
//! least `fire_threshold` of the last `window` windows were flagged,
//! and clears symmetrically), suppressing one-window blips at attack
//! boundaries — exactly the noise §IV-D describes.

use serde::{Deserialize, Serialize};

use crate::pipeline::WindowDetection;

/// Hysteresis policy converting flagged windows into alert episodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertPolicy {
    /// A window is *flagged* when more than this fraction (in percent)
    /// of its packets are classified malicious.
    pub flag_percent: u8,
    /// Sliding evaluation window length (n of m-of-n).
    pub window: usize,
    /// Flagged windows within the sliding window needed to raise (m).
    pub fire_threshold: usize,
    /// Un-flagged windows within the sliding window needed to clear.
    pub clear_threshold: usize,
    /// A window counts as a *true* attack window when more than this
    /// fraction (in percent) of its packets are actually malicious —
    /// attacks are often a minority of a busy victim's traffic.
    pub truth_percent: u8,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        AlertPolicy {
            flag_percent: 8,
            window: 3,
            fire_threshold: 2,
            clear_threshold: 3,
            truth_percent: 8,
        }
    }
}

/// One contiguous alert episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertEpisode {
    /// Window index at which the alert fired.
    pub fired_at: u64,
    /// Window index at which the alert cleared (`None` = still firing).
    pub cleared_at: Option<u64>,
}

/// An attack episode in the ground truth, with its detection outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionLatency {
    /// First window of the true attack episode.
    pub attack_start: u64,
    /// Last window of the true attack episode.
    pub attack_end: u64,
    /// Windows from attack start until the alert fired (`None` = missed).
    pub windows_to_detect: Option<u64>,
}

/// Runs the policy over a detection log, producing alert episodes.
pub fn alert_episodes(results: &[WindowDetection], policy: &AlertPolicy) -> Vec<AlertEpisode> {
    let mut episodes: Vec<AlertEpisode> = Vec::new();
    let mut firing = false;
    let mut history: Vec<bool> = Vec::new();
    for d in results {
        let flagged = d.packets > 0
            && d.predicted_malicious * 100 > d.packets * policy.flag_percent as usize;
        history.push(flagged);
        let n = policy.window.max(1);
        let recent = &history[history.len().saturating_sub(n)..];
        let recent_flagged = recent.iter().filter(|&&f| f).count();
        if !firing && recent_flagged >= policy.fire_threshold.min(n) {
            firing = true;
            episodes.push(AlertEpisode { fired_at: d.window_index, cleared_at: None });
        } else if firing && (recent.len() - recent_flagged) >= policy.clear_threshold.min(n) {
            firing = false;
            if let Some(last) = episodes.last_mut() {
                last.cleared_at = Some(d.window_index);
            }
        }
    }
    episodes
}

/// Extracts the ground-truth attack episodes (runs of windows whose
/// malicious share exceeds the policy's `truth_percent`) and matches
/// each with the first alert fired at or after its start, yielding
/// per-attack detection latency.
pub fn detection_latencies(
    results: &[WindowDetection],
    episodes: &[AlertEpisode],
    policy: &AlertPolicy,
) -> Vec<DetectionLatency> {
    let mut truth_episodes: Vec<(u64, u64)> = Vec::new();
    let mut current: Option<(u64, u64)> = None;
    for d in results {
        let attacking =
            d.packets > 0 && d.truth_malicious * 100 > d.packets * policy.truth_percent as usize;
        match (&mut current, attacking) {
            (None, true) => current = Some((d.window_index, d.window_index)),
            (Some((_, end)), true) => *end = d.window_index,
            (Some(done), false) => {
                truth_episodes.push(*done);
                current = None;
            }
            (None, false) => {}
        }
    }
    if let Some(done) = current {
        truth_episodes.push(done);
    }

    truth_episodes
        .into_iter()
        .map(|(start, end)| {
            let fired = episodes
                .iter()
                .map(|e| e.fired_at)
                .filter(|&f| f >= start && f <= end + 2)
                .min();
            DetectionLatency {
                attack_start: start,
                attack_end: end,
                windows_to_detect: fired.map(|f| f - start),
            }
        })
        .collect()
}

/// Summary of detection responsiveness over a live run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertSummary {
    /// True attack episodes observed.
    pub attacks: usize,
    /// Attacks for which an alert fired.
    pub detected: usize,
    /// Mean windows-to-detect over detected attacks.
    pub mean_latency_windows: f64,
    /// Alerts fired outside any attack episode (false alarms).
    pub false_alarms: usize,
}

/// Computes the full alert summary of a live run.
pub fn summarize(results: &[WindowDetection], policy: &AlertPolicy) -> AlertSummary {
    let episodes = alert_episodes(results, policy);
    let latencies = detection_latencies(results, &episodes, policy);
    let detected: Vec<u64> = latencies.iter().filter_map(|l| l.windows_to_detect).collect();
    let matched: usize = latencies
        .iter()
        .filter(|l| l.windows_to_detect.is_some())
        .count();
    // An episode is a false alarm if it fired outside every truth episode.
    let truth_ranges: Vec<(u64, u64)> =
        latencies.iter().map(|l| (l.attack_start, l.attack_end + 2)).collect();
    let false_alarms = episodes
        .iter()
        .filter(|e| !truth_ranges.iter().any(|&(s, t)| e.fired_at >= s && e.fired_at <= t))
        .count();
    AlertSummary {
        attacks: latencies.len(),
        detected: matched,
        mean_latency_windows: if detected.is_empty() {
            f64::NAN
        } else {
            detected.iter().sum::<u64>() as f64 / detected.len() as f64
        },
        false_alarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capture::record::Label;

    fn window(index: u64, malicious_frac: f64, truth: Label) -> WindowDetection {
        let packets = 100;
        let predicted = (malicious_frac * packets as f64) as usize;
        WindowDetection {
            window_index: index,
            packets,
            correct: 0,
            predicted_malicious: predicted,
            truth_malicious: if truth == Label::Malicious { 80 } else { 0 },
            malicious_correct: 0,
            mixed: false,
            majority_truth: truth,
            generation: 0,
            degraded: false,
        }
    }

    /// Benign, 5 attack windows, benign: one episode fires and clears.
    #[test]
    fn single_attack_yields_one_episode() {
        let mut results = Vec::new();
        for i in 0..5 {
            results.push(window(i, 0.05, Label::Benign));
        }
        for i in 5..10 {
            results.push(window(i, 0.95, Label::Malicious));
        }
        for i in 10..18 {
            results.push(window(i, 0.05, Label::Benign));
        }
        let policy = AlertPolicy::default();
        let episodes = alert_episodes(&results, &policy);
        assert_eq!(episodes.len(), 1);
        assert_eq!(episodes[0].fired_at, 6, "fires on the 2nd flagged window (2-of-3)");
        assert_eq!(episodes[0].cleared_at, Some(12), "clears after 3 clean windows");

        let latencies = detection_latencies(&results, &episodes, &policy);
        assert_eq!(latencies.len(), 1);
        assert_eq!(latencies[0].windows_to_detect, Some(1));

        let summary = summarize(&results, &policy);
        assert_eq!(summary.attacks, 1);
        assert_eq!(summary.detected, 1);
        assert_eq!(summary.false_alarms, 0);
        assert!((summary.mean_latency_windows - 1.0).abs() < 1e-12);
    }

    /// A single-window blip does not fire (the §IV-D boundary noise is
    /// absorbed by the m-of-n smoothing).
    #[test]
    fn one_window_blip_is_suppressed() {
        let mut results: Vec<WindowDetection> =
            (0..10).map(|i| window(i, 0.05, Label::Benign)).collect();
        results[4] = window(4, 0.95, Label::Benign); // misclassification blip
        let episodes = alert_episodes(&results, &AlertPolicy::default());
        assert!(episodes.is_empty());
        let summary = summarize(&results, &AlertPolicy::default());
        assert_eq!(summary.false_alarms, 0);
    }

    /// A missed attack is reported as undetected, not silently dropped.
    #[test]
    fn missed_attacks_are_counted() {
        let mut results = Vec::new();
        for i in 0..4 {
            results.push(window(i, 0.05, Label::Benign));
        }
        // The model sleeps through the whole attack (predicted share
        // stays below the flag threshold).
        for i in 4..8 {
            results.push(window(i, 0.04, Label::Malicious));
        }
        for i in 8..12 {
            results.push(window(i, 0.05, Label::Benign));
        }
        let summary = summarize(&results, &AlertPolicy::default());
        assert_eq!(summary.attacks, 1);
        assert_eq!(summary.detected, 0);
        assert!(summary.mean_latency_windows.is_nan());
    }

    /// Persistent false positives outside any attack are false alarms.
    #[test]
    fn false_alarms_are_counted() {
        let mut results: Vec<WindowDetection> =
            (0..12).map(|i| window(i, 0.05, Label::Benign)).collect();
        results[6] = window(6, 0.9, Label::Benign);
        results[7] = window(7, 0.9, Label::Benign);
        let summary = summarize(&results, &AlertPolicy::default());
        assert_eq!(summary.attacks, 0);
        assert_eq!(summary.false_alarms, 1);
    }

    /// Back-to-back attacks produce separate episodes when separated by
    /// enough clean windows.
    #[test]
    fn separate_attacks_separate_episodes() {
        let mut results = Vec::new();
        let mut idx = 0u64;
        for _ in 0..2 {
            for _ in 0..6 {
                results.push(window(idx, 0.05, Label::Benign));
                idx += 1;
            }
            for _ in 0..5 {
                results.push(window(idx, 0.95, Label::Malicious));
                idx += 1;
            }
        }
        for _ in 0..6 {
            results.push(window(idx, 0.05, Label::Benign));
            idx += 1;
        }
        let policy = AlertPolicy::default();
        let episodes = alert_episodes(&results, &policy);
        assert_eq!(episodes.len(), 2);
        let summary = summarize(&results, &policy);
        assert_eq!(summary.attacks, 2);
        assert_eq!(summary.detected, 2);
    }
}
