//! Property-based tests of the alerting layer, detection-log
//! aggregates over arbitrary window streams, and the serving layer's
//! bounded ingest queue under random push/drain/shed sequences.

use capture::record::{Label, PacketRecord};
use ids::alerts::{alert_episodes, detection_latencies, summarize, AlertPolicy};
use ids::pipeline::WindowDetection;
use ids::realtime::DetectionLog;
use ids::serving::{Admission, BackpressurePolicy, IngestQueue};
use netsim::packet::{Addr, Protocol};
use netsim::time::SimTime;
use proptest::prelude::*;

prop_compose! {
    fn window_strategy(index: u64)(
        packets in 1usize..2_000,
        predicted_frac in 0.0f64..1.0,
        truth_frac in 0.0f64..1.0,
        correct_frac in 0.0f64..1.0,
    ) -> WindowDetection {
        let predicted_malicious = (packets as f64 * predicted_frac) as usize;
        let truth_malicious = (packets as f64 * truth_frac) as usize;
        let correct = (packets as f64 * correct_frac) as usize;
        WindowDetection {
            window_index: index,
            packets,
            correct,
            predicted_malicious,
            truth_malicious,
            malicious_correct: correct.min(truth_malicious),
            mixed: truth_malicious > 0 && truth_malicious < packets,
            majority_truth: if truth_malicious * 2 > packets {
                Label::Malicious
            } else {
                Label::Benign
            },
            generation: 0,
            degraded: false,
        }
    }
}

fn stream_strategy() -> impl Strategy<Value = Vec<WindowDetection>> {
    proptest::collection::vec(any::<u8>(), 1..120).prop_flat_map(|seeds| {
        let windows: Vec<_> =
            seeds.iter().enumerate().map(|(i, _)| window_strategy(i as u64)).collect();
        windows
    })
}

/// One step of a random ingest-queue schedule.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    /// Offer `count` records, first advancing the clock by
    /// `advance_secs` so offers cross window boundaries.
    Offer { count: usize, advance_secs: u64 },
    Pop(usize),
    /// The `serve.ingest_queue_full` chaos latch.
    ForceFull,
    ClearForced,
}

fn op_strategy() -> impl Strategy<Value = QueueOp> {
    // Two offer arms tilt the mix toward offers so queues actually
    // fill; the vendored prop_oneof! has no weight syntax.
    prop_oneof![
        (1usize..48, 0u64..3)
            .prop_map(|(count, advance_secs)| QueueOp::Offer { count, advance_secs }),
        (1usize..96, 0u64..2)
            .prop_map(|(count, advance_secs)| QueueOp::Offer { count, advance_secs }),
        (1usize..48).prop_map(QueueOp::Pop),
        Just(QueueOp::ForceFull),
        Just(QueueOp::ClearForced),
    ]
}

fn policy_strategy() -> impl Strategy<Value = BackpressurePolicy> {
    prop_oneof![
        Just(BackpressurePolicy::BlockUpstream),
        Just(BackpressurePolicy::DropOldest),
        (2usize..8).prop_map(|keep| BackpressurePolicy::DegradeSampled { keep }),
    ]
}

fn queue_record(secs: u64, offset_ms: u64) -> PacketRecord {
    PacketRecord {
        ts: SimTime::from_millis(secs * 1000 + offset_ms % 1000),
        src: Addr::new(10, 0, 0, 1),
        src_port: 1000,
        dst: Addr::new(10, 0, 0, 2),
        dst_port: 80,
        protocol: Protocol::Udp,
        flags: Default::default(),
        wire_len: 100,
        payload_len: 60,
        seq: 0,
        label: Label::Benign,
    }
}

proptest! {
    /// Episodes never overlap and fire/clear indices are ordered.
    #[test]
    fn episodes_are_ordered_and_disjoint(results in stream_strategy()) {
        let episodes = alert_episodes(&results, &AlertPolicy::default());
        for e in &episodes {
            if let Some(cleared) = e.cleared_at {
                prop_assert!(cleared >= e.fired_at);
            }
        }
        for pair in episodes.windows(2) {
            let first_cleared = pair[0].cleared_at.expect("only the last episode may be open");
            prop_assert!(pair[1].fired_at > first_cleared);
        }
        // At most the final episode is still firing.
        for e in episodes.iter().rev().skip(1) {
            prop_assert!(e.cleared_at.is_some());
        }
    }

    /// Latency bookkeeping: detections never exceed attacks; latencies
    /// are within the episode span (+ the 2-window grace).
    #[test]
    fn latency_accounting_is_consistent(results in stream_strategy()) {
        let policy = AlertPolicy::default();
        let episodes = alert_episodes(&results, &policy);
        let latencies = detection_latencies(&results, &episodes, &policy);
        let summary = summarize(&results, &policy);
        prop_assert_eq!(summary.attacks, latencies.len());
        prop_assert!(summary.detected <= summary.attacks);
        prop_assert!(summary.false_alarms <= episodes.len());
        for l in &latencies {
            prop_assert!(l.attack_end >= l.attack_start);
            if let Some(w) = l.windows_to_detect {
                prop_assert!(l.attack_start + w <= l.attack_end + 2);
            }
        }
    }

    /// The bounded ingest queue under an arbitrary interleaving of
    /// offers, drains and chaos full-latch toggles: the bound is never
    /// exceeded, and every offered record reaches exactly one terminal
    /// disposition (popped, shed, sampled out) or is still queued.
    #[test]
    fn ingest_queue_bound_and_conservation(
        capacity in 1usize..96,
        policy in policy_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut q = IngestQueue::new(capacity, policy, 1);
        let mut secs = 0u64;
        // Independent tally of offer verdicts, cross-checked against
        // the queue's own counters at the end.
        let (mut admitted, mut shed, mut sampled_out) = (0u64, 0u64, 0u64);
        // Drop-oldest evictions: admitted records later shed, so they
        // never reach `pop`.
        let mut evicted = 0u64;
        let mut popped = 0u64;
        for op in ops {
            match op {
                QueueOp::Offer { count, advance_secs } => {
                    secs += advance_secs;
                    for i in 0..count {
                        match q.offer(queue_record(secs, i as u64)) {
                            Admission::Admitted => admitted += 1,
                            Admission::AdmittedSheddingOldest(_) => {
                                admitted += 1;
                                shed += 1;
                                evicted += 1;
                            }
                            Admission::SampledOut => sampled_out += 1,
                            Admission::Shed => shed += 1,
                        }
                        prop_assert!(q.len() <= q.capacity());
                    }
                }
                QueueOp::Pop(count) => {
                    for _ in 0..count {
                        if q.pop().is_some() {
                            popped += 1;
                        }
                    }
                }
                QueueOp::ForceFull => q.force_full(),
                QueueOp::ClearForced => q.clear_forced_full(),
            }
            prop_assert!(q.len() <= q.capacity());
            prop_assert_eq!(q.conservation_violation(), None);
        }
        let (q_offered, q_admitted, q_popped, q_shed, q_sampled) = q.record_counts();
        prop_assert_eq!(q_admitted, admitted);
        prop_assert_eq!(q_popped, popped);
        prop_assert_eq!(q_shed, shed);
        prop_assert_eq!(q_sampled, sampled_out);
        // Terminal-disposition conservation, exact at every point.
        prop_assert_eq!(q_offered, q_popped + q_shed + q_sampled + q.len() as u64);
        prop_assert!(q.high_water() <= capacity);
        // Drain to empty: every admitted record that was not evicted
        // by drop-oldest is eventually popped.
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, admitted - evicted);
        prop_assert_eq!(q.conservation_violation(), None);
    }

    /// DetectionLog aggregates stay within their mathematical ranges.
    #[test]
    fn log_aggregates_are_bounded(results in stream_strategy()) {
        let log = DetectionLog::new();
        for &d in &results {
            log.push(d);
        }
        let mean = log.mean_accuracy();
        prop_assert!((0.0..=1.0).contains(&mean));
        prop_assert!(log.min_accuracy() <= mean + 1e-12);
        if let Some(recall) = log.malicious_recall() {
            prop_assert!((0.0..=1.0).contains(&recall));
        }
        if let (Some(mixed), Some(pure)) = (log.mean_accuracy_mixed(), log.mean_accuracy_pure()) {
            // Both are averages of window accuracies.
            prop_assert!((0.0..=1.0).contains(&mixed));
            prop_assert!((0.0..=1.0).contains(&pure));
        }
    }
}
