//! Property-based tests of the alerting layer and detection-log
//! aggregates over arbitrary window streams.

use capture::record::Label;
use ids::alerts::{alert_episodes, detection_latencies, summarize, AlertPolicy};
use ids::pipeline::WindowDetection;
use ids::realtime::DetectionLog;
use proptest::prelude::*;

prop_compose! {
    fn window_strategy(index: u64)(
        packets in 1usize..2_000,
        predicted_frac in 0.0f64..1.0,
        truth_frac in 0.0f64..1.0,
        correct_frac in 0.0f64..1.0,
    ) -> WindowDetection {
        let predicted_malicious = (packets as f64 * predicted_frac) as usize;
        let truth_malicious = (packets as f64 * truth_frac) as usize;
        let correct = (packets as f64 * correct_frac) as usize;
        WindowDetection {
            window_index: index,
            packets,
            correct,
            predicted_malicious,
            truth_malicious,
            malicious_correct: correct.min(truth_malicious),
            mixed: truth_malicious > 0 && truth_malicious < packets,
            majority_truth: if truth_malicious * 2 > packets {
                Label::Malicious
            } else {
                Label::Benign
            },
            degraded: false,
        }
    }
}

fn stream_strategy() -> impl Strategy<Value = Vec<WindowDetection>> {
    proptest::collection::vec(any::<u8>(), 1..120).prop_flat_map(|seeds| {
        let windows: Vec<_> =
            seeds.iter().enumerate().map(|(i, _)| window_strategy(i as u64)).collect();
        windows
    })
}

proptest! {
    /// Episodes never overlap and fire/clear indices are ordered.
    #[test]
    fn episodes_are_ordered_and_disjoint(results in stream_strategy()) {
        let episodes = alert_episodes(&results, &AlertPolicy::default());
        for e in &episodes {
            if let Some(cleared) = e.cleared_at {
                prop_assert!(cleared >= e.fired_at);
            }
        }
        for pair in episodes.windows(2) {
            let first_cleared = pair[0].cleared_at.expect("only the last episode may be open");
            prop_assert!(pair[1].fired_at > first_cleared);
        }
        // At most the final episode is still firing.
        for e in episodes.iter().rev().skip(1) {
            prop_assert!(e.cleared_at.is_some());
        }
    }

    /// Latency bookkeeping: detections never exceed attacks; latencies
    /// are within the episode span (+ the 2-window grace).
    #[test]
    fn latency_accounting_is_consistent(results in stream_strategy()) {
        let policy = AlertPolicy::default();
        let episodes = alert_episodes(&results, &policy);
        let latencies = detection_latencies(&results, &episodes, &policy);
        let summary = summarize(&results, &policy);
        prop_assert_eq!(summary.attacks, latencies.len());
        prop_assert!(summary.detected <= summary.attacks);
        prop_assert!(summary.false_alarms <= episodes.len());
        for l in &latencies {
            prop_assert!(l.attack_end >= l.attack_start);
            if let Some(w) = l.windows_to_detect {
                prop_assert!(l.attack_start + w <= l.attack_end + 2);
            }
        }
    }

    /// DetectionLog aggregates stay within their mathematical ranges.
    #[test]
    fn log_aggregates_are_bounded(results in stream_strategy()) {
        let log = DetectionLog::new();
        for &d in &results {
            log.push(d);
        }
        let mean = log.mean_accuracy();
        prop_assert!((0.0..=1.0).contains(&mean));
        prop_assert!(log.min_accuracy() <= mean + 1e-12);
        if let Some(recall) = log.malicious_recall() {
            prop_assert!((0.0..=1.0).contains(&recall));
        }
        if let (Some(mixed), Some(pure)) = (log.mean_accuracy_mixed(), log.mean_accuracy_pure()) {
            // Both are averages of window accuracies.
            prop_assert!((0.0..=1.0).contains(&mixed));
            prop_assert!((0.0..=1.0).contains(&pure));
        }
    }
}
