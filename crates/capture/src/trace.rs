//! Human-readable packet traces — `tcpdump -n` for the simulated bridge.
//!
//! Useful when debugging scenarios: attach a [`TextTrace`] as a world
//! tap (optionally filtered) and read the lines afterwards.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use netsim::packet::{Packet, Protocol, TcpFlags};
use netsim::tap::{PacketTap, TapMeta};

use crate::sniffer::SnifferFilter;

/// Formats one packet the way `tcpdump -n` would.
pub fn format_packet(meta: &TapMeta, packet: &Packet) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{:.6} ", meta.time.as_secs_f64());
    match packet.protocol() {
        Protocol::Tcp => {
            let flags = packet.tcp_flags();
            let mut flag_str = String::new();
            for (flag, ch) in [
                (TcpFlags::SYN, 'S'),
                (TcpFlags::FIN, 'F'),
                (TcpFlags::RST, 'R'),
                (TcpFlags::PSH, 'P'),
            ] {
                if flags.contains(flag) {
                    flag_str.push(ch);
                }
            }
            if flags.contains(TcpFlags::ACK) {
                flag_str.push('.');
            }
            if flag_str.is_empty() {
                flag_str.push_str("none");
            }
            let _ = write!(
                line,
                "IP {}.{} > {}.{}: Flags [{}], seq {}, length {}",
                packet.src,
                packet.transport.src_port(),
                packet.dst,
                packet.transport.dst_port(),
                flag_str,
                packet.tcp_seq().unwrap_or(0),
                packet.payload.len()
            );
        }
        Protocol::Udp => {
            let _ = write!(
                line,
                "IP {}.{} > {}.{}: UDP, length {}",
                packet.src,
                packet.transport.src_port(),
                packet.dst,
                packet.transport.dst_port(),
                packet.payload.len()
            );
        }
    }
    line
}

#[derive(Debug, Default)]
struct TraceState {
    lines: Vec<String>,
    limit: Option<usize>,
    truncated: u64,
}

/// A tap collecting formatted trace lines.
#[derive(Debug)]
pub struct TextTrace {
    filter: SnifferFilter,
    state: Rc<RefCell<TraceState>>,
}

/// The reader half of a [`TextTrace`].
#[derive(Debug, Clone)]
pub struct TraceHandle {
    state: Rc<RefCell<TraceState>>,
}

/// Creates a connected trace/handle pair; at most `limit` lines are kept
/// (`None` = unbounded — beware on long runs).
pub fn trace_pair(filter: SnifferFilter, limit: Option<usize>) -> (TextTrace, TraceHandle) {
    let state = Rc::new(RefCell::new(TraceState { lines: Vec::new(), limit, truncated: 0 }));
    (TextTrace { filter, state: Rc::clone(&state) }, TraceHandle { state })
}

impl PacketTap for TextTrace {
    fn on_packet(&mut self, meta: &TapMeta, packet: &Packet) {
        let matches = match self.filter {
            SnifferFilter::All => true,
            SnifferFilter::Involving(addr) => packet.src == addr || packet.dst == addr,
        };
        if !matches {
            return;
        }
        let mut state = self.state.borrow_mut();
        if state.limit.is_some_and(|limit| state.lines.len() >= limit) {
            state.truncated += 1;
            return;
        }
        let line = format_packet(meta, packet);
        state.lines.push(line);
    }
}

impl TraceHandle {
    /// The collected lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.state.borrow().lines.clone()
    }

    /// How many packets were dropped after the line limit was reached.
    pub fn truncated(&self) -> u64 {
        self.state.borrow().truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::ids::{LinkId, NodeId};
    use netsim::packet::{Addr, TcpHeader};
    use netsim::time::SimTime;

    fn meta() -> TapMeta {
        TapMeta {
            time: SimTime::from_millis(1_500),
            link: LinkId::from_raw(0),
            receiver: NodeId::from_raw(0),
        }
    }

    #[test]
    fn tcp_syn_formats_like_tcpdump() {
        let p = Packet::tcp(
            Addr::new(10, 0, 0, 5),
            Addr::new(10, 0, 0, 2),
            TcpHeader { src_port: 50000, dst_port: 80, seq: 42, ack: 0, flags: TcpFlags::SYN, window: 0 },
            Bytes::new(),
        );
        let line = format_packet(&meta(), &p);
        assert_eq!(line, "1.500000 IP 10.0.0.5.50000 > 10.0.0.2.80: Flags [S], seq 42, length 0");
    }

    #[test]
    fn udp_formats_with_length() {
        let p = Packet::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 9, 53, Bytes::from_static(b"abc"));
        let line = format_packet(&meta(), &p);
        assert!(line.ends_with("UDP, length 3"), "{line}");
    }

    #[test]
    fn trace_respects_limit_and_filter() {
        let victim = Addr::new(10, 0, 0, 2);
        let (mut tap, handle) = trace_pair(SnifferFilter::Involving(victim), Some(2));
        for i in 0..5 {
            let p = Packet::udp(Addr::new(10, 0, 0, 9), victim, 1000 + i, 53, Bytes::new());
            tap.on_packet(&meta(), &p);
        }
        // Unrelated traffic is filtered before the limit counts it.
        let other = Packet::udp(Addr::new(9, 9, 9, 9), Addr::new(8, 8, 8, 8), 1, 2, Bytes::new());
        tap.on_packet(&meta(), &other);
        assert_eq!(handle.lines().len(), 2);
        assert_eq!(handle.truncated(), 3);
    }
}
