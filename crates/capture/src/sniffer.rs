//! The sniffer tap: a `tcpdump` on the simulated bridge.
//!
//! A [`Sniffer`] implements [`netsim::tap::PacketTap`] and is installed
//! into the world with [`netsim::world::World::add_tap`]; its paired
//! [`SnifferHandle`] is kept by the orchestrator (or the IDS container)
//! and drained periodically. The paper's IDS monitors the traffic
//! reaching the TServer, so the default filter captures packets whose
//! source or destination is the monitored address.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::packet::Packet;
use netsim::tap::{PacketTap, TapMeta};
use netsim::Addr;

use crate::record::PacketRecord;

/// Which packets a sniffer keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnifferFilter {
    /// Keep every delivered packet on the network.
    #[default]
    All,
    /// Keep packets whose source or destination matches the address
    /// (monitoring one host, like the IDS watching the TServer).
    Involving(Addr),
}

impl SnifferFilter {
    fn matches(self, packet: &Packet) -> bool {
        match self {
            SnifferFilter::All => true,
            SnifferFilter::Involving(addr) => packet.src == addr || packet.dst == addr,
        }
    }
}

#[derive(Debug, Default)]
struct SnifferState {
    records: Vec<PacketRecord>,
    captured_total: u64,
}

/// The tap half: installed into the world.
#[derive(Debug)]
pub struct Sniffer {
    filter: SnifferFilter,
    state: Rc<RefCell<SnifferState>>,
}

/// The reader half: drained by the orchestrator or the IDS.
#[derive(Debug, Clone)]
pub struct SnifferHandle {
    state: Rc<RefCell<SnifferState>>,
}

/// Creates a connected sniffer/handle pair.
///
/// ```
/// use capture::sniffer::{sniffer_pair, SnifferFilter};
///
/// let (tap, handle) = sniffer_pair(SnifferFilter::All);
/// // world.add_tap(Box::new(tap));
/// # let _ = (tap, handle);
/// ```
pub fn sniffer_pair(filter: SnifferFilter) -> (Sniffer, SnifferHandle) {
    let state = Rc::new(RefCell::new(SnifferState::default()));
    (Sniffer { filter, state: Rc::clone(&state) }, SnifferHandle { state })
}

impl PacketTap for Sniffer {
    fn on_packet(&mut self, meta: &TapMeta, packet: &Packet) {
        if !self.filter.matches(packet) {
            return;
        }
        let mut state = self.state.borrow_mut();
        state.captured_total += 1;
        state.records.push(PacketRecord::from_packet(meta.time, packet));
    }
}

impl SnifferHandle {
    /// Removes and returns all buffered records (real-time consumption).
    pub fn drain(&self) -> Vec<PacketRecord> {
        std::mem::take(&mut self.state.borrow_mut().records)
    }

    /// Number of records currently buffered.
    pub fn buffered(&self) -> usize {
        self.state.borrow().records.len()
    }

    /// Total packets ever captured through this sniffer.
    pub fn captured_total(&self) -> u64 {
        self.state.borrow().captured_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::ids::{LinkId, NodeId};
    use netsim::packet::Provenance;
    use netsim::time::SimTime;

    fn meta() -> TapMeta {
        TapMeta { time: SimTime::from_secs(1), link: LinkId::from_raw(0), receiver: NodeId::from_raw(0) }
    }

    fn udp(src: Addr, dst: Addr) -> Packet {
        Packet::udp(src, dst, 1, 2, Bytes::new()).with_provenance(Provenance::Benign)
    }

    #[test]
    fn all_filter_captures_everything() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        tap.on_packet(&meta(), &udp(Addr::new(3, 0, 0, 1), Addr::new(4, 0, 0, 1)));
        assert_eq!(handle.buffered(), 2);
        assert_eq!(handle.captured_total(), 2);
    }

    #[test]
    fn involving_filter_matches_either_direction() {
        let victim = Addr::new(10, 0, 0, 2);
        let (mut tap, handle) = sniffer_pair(SnifferFilter::Involving(victim));
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), victim)); // towards
        tap.on_packet(&meta(), &udp(victim, Addr::new(1, 0, 0, 1))); // from
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(9, 0, 0, 9))); // unrelated
        assert_eq!(handle.buffered(), 2);
    }

    #[test]
    fn drain_empties_the_buffer_but_keeps_totals() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        let drained = handle.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(handle.buffered(), 0);
        assert_eq!(handle.captured_total(), 1);
    }
}
