//! The sniffer tap: a `tcpdump` on the simulated bridge.
//!
//! A [`Sniffer`] implements [`netsim::tap::PacketTap`] and is installed
//! into the world with [`netsim::world::World::add_tap`]; its paired
//! [`SnifferHandle`] is kept by the orchestrator (or the IDS container)
//! and drained periodically. The paper's IDS monitors the traffic
//! reaching the TServer, so the default filter captures packets whose
//! source or destination is the monitored address.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::buggify::{stream_seed, DecisionPoint};
use netsim::packet::Packet;
use netsim::tap::{PacketTap, TapMeta};
use netsim::{Addr, SimRng};

use crate::record::PacketRecord;

/// Which packets a sniffer keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnifferFilter {
    /// Keep every delivered packet on the network.
    #[default]
    All,
    /// Keep packets whose source or destination matches the address
    /// (monitoring one host, like the IDS watching the TServer).
    Involving(Addr),
}

impl SnifferFilter {
    fn matches(self, packet: &Packet) -> bool {
        match self {
            SnifferFilter::All => true,
            SnifferFilter::Involving(addr) => packet.src == addr || packet.dst == addr,
        }
    }
}

/// Buggify-style perturbation of the capture path, keyed off the same
/// `(swarm_seed, decision-point name)` stream derivation as the kernel's
/// [`netsim::buggify`] layer so a swarm seed replays identically here
/// too. Two independent streams: one decides whether a drain is
/// partial, one decides whether a record's wire length is truncated.
#[derive(Debug)]
struct DrainChaos {
    drain_rng: SimRng,
    truncate_rng: SimRng,
    intensity: f64,
    partial_drains: u64,
    truncated_records: u64,
}

impl DrainChaos {
    fn new(swarm_seed: u64, intensity: f64) -> Self {
        DrainChaos {
            drain_rng: SimRng::seed_from(stream_seed(
                swarm_seed,
                DecisionPoint::CaptureDrainPartial.name(),
            )),
            truncate_rng: SimRng::seed_from(stream_seed(
                swarm_seed,
                DecisionPoint::CaptureRecordTruncate.name(),
            )),
            intensity,
            partial_drains: 0,
            truncated_records: 0,
        }
    }
}

#[derive(Debug, Default)]
struct SnifferState {
    records: Vec<PacketRecord>,
    captured_total: u64,
    drained_total: u64,
    /// `None` = unbounded (offline capture); `Some(n)` = ring-buffer-less
    /// tail drop once `records.len()` reaches `n` (live IDS feed).
    capacity: Option<usize>,
    dropped_overflow: u64,
    /// Optional perturbation layer; `None` keeps the hot path chaos-free.
    chaos: Option<DrainChaos>,
}

/// The tap half: installed into the world.
#[derive(Debug)]
pub struct Sniffer {
    filter: SnifferFilter,
    state: Rc<RefCell<SnifferState>>,
}

/// The reader half: drained by the orchestrator or the IDS.
#[derive(Debug, Clone)]
pub struct SnifferHandle {
    state: Rc<RefCell<SnifferState>>,
}

/// Creates a connected sniffer/handle pair.
///
/// ```
/// use capture::sniffer::{sniffer_pair, SnifferFilter};
///
/// let (tap, handle) = sniffer_pair(SnifferFilter::All);
/// // world.add_tap(Box::new(tap));
/// # let _ = (tap, handle);
/// ```
pub fn sniffer_pair(filter: SnifferFilter) -> (Sniffer, SnifferHandle) {
    let state = Rc::new(RefCell::new(SnifferState::default()));
    (Sniffer { filter, state: Rc::clone(&state) }, SnifferHandle { state })
}

/// Creates a sniffer/handle pair whose buffer tail-drops beyond
/// `capacity` undrained records, mirroring a real capture socket's
/// finite kernel buffer. Drops are counted, never silent — see
/// [`SnifferHandle::dropped_overflow`].
pub fn bounded_sniffer_pair(filter: SnifferFilter, capacity: usize) -> (Sniffer, SnifferHandle) {
    let (tap, handle) = sniffer_pair(filter);
    handle.set_capacity(Some(capacity));
    (tap, handle)
}

impl PacketTap for Sniffer {
    fn on_packet(&mut self, meta: &TapMeta, packet: &Packet) {
        if !self.filter.matches(packet) {
            return;
        }
        let mut state = self.state.borrow_mut();
        if let Some(capacity) = state.capacity {
            if state.records.len() >= capacity {
                state.dropped_overflow += 1;
                return;
            }
        }
        state.captured_total += 1;
        let mut record = PacketRecord::from_packet(meta.time, packet);
        if let Some(chaos) = state.chaos.as_mut() {
            let p = DecisionPoint::CaptureRecordTruncate.base_probability() * chaos.intensity;
            if chaos.truncate_rng.chance(p) {
                // A truncated write: the record survives but reports a
                // snaplen-style clipped wire length (never below the
                // payload accounting's 1-byte floor).
                let frac = chaos.truncate_rng.uniform_range(0.1, 0.9);
                record.wire_len = ((record.wire_len as f64 * frac) as u32).max(1);
                chaos.truncated_records += 1;
            }
        }
        state.records.push(record);
    }
}

impl SnifferHandle {
    /// Removes and returns all buffered records (real-time consumption).
    ///
    /// Allocates a fresh buffer per call; steady-state consumers should
    /// prefer [`SnifferHandle::drain_into`].
    pub fn drain(&self) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Moves all buffered records into `out` (cleared first) by
    /// swapping buffers: the sniffer keeps capturing into the
    /// allocation `out` brought back, so a consumer draining on a
    /// cadence ping-pongs two buffers and never allocates after warmup.
    pub fn drain_into(&self, out: &mut Vec<PacketRecord>) {
        out.clear();
        let mut state = self.state.borrow_mut();
        let state = &mut *state;
        std::mem::swap(&mut state.records, out);
        if let Some(chaos) = state.chaos.as_mut() {
            let p = DecisionPoint::CaptureDrainPartial.base_probability() * chaos.intensity;
            if out.len() >= 2 && chaos.drain_rng.chance(p) {
                // Partial drain: a random suffix stays buffered, as if
                // the consumer's read returned short. Conservation is
                // preserved — the suffix counts as buffered, not drained.
                let keep = chaos.drain_rng.int_range(1, out.len() as u64 - 1) as usize;
                state.records.extend(out.drain(out.len() - keep..));
                chaos.partial_drains += 1;
            }
        }
        state.drained_total += out.len() as u64;
    }

    /// Moves up to `max` of the oldest buffered records into `out`
    /// (cleared first), leaving the rest buffered. The serving layer's
    /// block-upstream backpressure uses this to drain only what its
    /// ingestion queue has room for; records left behind stay subject to
    /// the sniffer's own capacity/tail-drop accounting. Partial-drain
    /// chaos applies here too (same stream as [`drain_into`]): a fired
    /// draw shortens the take further, conservation preserved.
    ///
    /// [`drain_into`]: SnifferHandle::drain_into
    pub fn drain_up_to(&self, max: usize, out: &mut Vec<PacketRecord>) {
        out.clear();
        if max == 0 {
            return;
        }
        let mut state = self.state.borrow_mut();
        let state = &mut *state;
        let mut take = state.records.len().min(max);
        if let Some(chaos) = state.chaos.as_mut() {
            let p = DecisionPoint::CaptureDrainPartial.base_probability() * chaos.intensity;
            if take >= 2 && chaos.drain_rng.chance(p) {
                let keep = chaos.drain_rng.int_range(1, take as u64 - 1) as usize;
                take -= keep;
                chaos.partial_drains += 1;
            }
        }
        out.extend(state.records.drain(..take));
        state.drained_total += take as u64;
    }

    /// Arms capture-path chaos (partial drains, truncated records) for
    /// a swarm run. The streams are keyed by the same
    /// [`netsim::buggify::stream_seed`] derivation as the kernel's
    /// decision points, so one swarm seed drives the whole testbed.
    pub fn set_chaos(&self, swarm_seed: u64, intensity: f64) {
        self.state.borrow_mut().chaos = Some(DrainChaos::new(swarm_seed, intensity));
    }

    /// Disarms capture-path chaos.
    pub fn clear_chaos(&self) {
        self.state.borrow_mut().chaos = None;
    }

    /// `(partial_drains, truncated_records)` fired so far, or `None`
    /// when chaos is disarmed.
    pub fn chaos_counts(&self) -> Option<(u64, u64)> {
        self.state.borrow().chaos.as_ref().map(|c| (c.partial_drains, c.truncated_records))
    }

    /// Total records handed to consumers via drains so far. Together
    /// with [`SnifferHandle::buffered`] this must always account for
    /// every captured record:
    /// `captured_total == drained_total + buffered`.
    pub fn drained_total(&self) -> u64 {
        self.state.borrow().drained_total
    }

    /// Number of records currently buffered.
    pub fn buffered(&self) -> usize {
        self.state.borrow().records.len()
    }

    /// Total packets ever captured through this sniffer.
    pub fn captured_total(&self) -> u64 {
        self.state.borrow().captured_total
    }

    /// Sets (or clears) the buffer capacity. A consumer that drains on
    /// a cadence bounds its worst-case memory; packets arriving while
    /// the buffer is full are dropped and counted.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        self.state.borrow_mut().capacity = capacity;
    }

    /// The current capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.state.borrow().capacity
    }

    /// Packets discarded because the buffer was at capacity.
    pub fn dropped_overflow(&self) -> u64 {
        self.state.borrow().dropped_overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::ids::{LinkId, NodeId};
    use netsim::packet::Provenance;
    use netsim::time::SimTime;

    fn meta() -> TapMeta {
        TapMeta { time: SimTime::from_secs(1), link: LinkId::from_raw(0), receiver: NodeId::from_raw(0) }
    }

    fn udp(src: Addr, dst: Addr) -> Packet {
        Packet::udp(src, dst, 1, 2, Bytes::new()).with_provenance(Provenance::Benign)
    }

    #[test]
    fn all_filter_captures_everything() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        tap.on_packet(&meta(), &udp(Addr::new(3, 0, 0, 1), Addr::new(4, 0, 0, 1)));
        assert_eq!(handle.buffered(), 2);
        assert_eq!(handle.captured_total(), 2);
    }

    #[test]
    fn involving_filter_matches_either_direction() {
        let victim = Addr::new(10, 0, 0, 2);
        let (mut tap, handle) = sniffer_pair(SnifferFilter::Involving(victim));
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), victim)); // towards
        tap.on_packet(&meta(), &udp(victim, Addr::new(1, 0, 0, 1))); // from
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(9, 0, 0, 9))); // unrelated
        assert_eq!(handle.buffered(), 2);
    }

    #[test]
    fn bounded_buffer_tail_drops_and_counts() {
        let (mut tap, handle) = bounded_sniffer_pair(SnifferFilter::All, 2);
        for _ in 0..5 {
            tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        }
        assert_eq!(handle.buffered(), 2);
        assert_eq!(handle.captured_total(), 2);
        assert_eq!(handle.dropped_overflow(), 3);
        // Draining frees the buffer; capture resumes.
        handle.drain();
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        assert_eq!(handle.buffered(), 1);
        assert_eq!(handle.dropped_overflow(), 3);
    }

    #[test]
    fn capacity_can_be_changed_live() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        assert_eq!(handle.capacity(), None);
        for _ in 0..4 {
            tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        }
        assert_eq!(handle.buffered(), 4);
        handle.set_capacity(Some(4));
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        assert_eq!(handle.buffered(), 4);
        assert_eq!(handle.dropped_overflow(), 1);
    }

    #[test]
    fn drain_empties_the_buffer_but_keeps_totals() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        let drained = handle.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(handle.buffered(), 0);
        assert_eq!(handle.captured_total(), 1);
        assert_eq!(handle.drained_total(), 1);
    }

    #[test]
    fn drain_into_swaps_buffers_and_reuses_capacity() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        let mut buf = Vec::new();
        for round in 0..3 {
            for _ in 0..10 {
                tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
            }
            handle.drain_into(&mut buf);
            assert_eq!(buf.len(), 10, "round {round}");
            assert_eq!(handle.buffered(), 0);
        }
        // After warmup both ping-pong buffers hold >= 10 records of
        // capacity; a fresh round must not grow either.
        let cap_before = buf.capacity();
        for _ in 0..10 {
            tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        }
        handle.drain_into(&mut buf);
        assert_eq!(buf.capacity(), cap_before);
    }

    #[test]
    fn drop_accounting_is_conserved_under_overflow() {
        // Every packet offered to the sniffer is exactly one of:
        // captured (then drained or still buffered) or dropped on
        // overflow. The counters must never lose one.
        let (mut tap, handle) = bounded_sniffer_pair(SnifferFilter::All, 8);
        let mut buf = Vec::new();
        let mut offered = 0u64;
        for round in 0..13 {
            for _ in 0..5 {
                tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
                offered += 1;
            }
            if round % 3 == 0 {
                handle.drain_into(&mut buf);
            }
            assert_eq!(
                handle.captured_total(),
                handle.drained_total() + handle.buffered() as u64,
                "captured must equal drained + buffered (round {round})"
            );
            assert_eq!(
                offered,
                handle.captured_total() + handle.dropped_overflow(),
                "offered must equal captured + dropped (round {round})"
            );
        }
        assert!(handle.dropped_overflow() > 0, "test must exercise overflow");
    }

    #[test]
    fn chaos_partial_drains_preserve_conservation() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        handle.set_chaos(1234, 20.0); // inflate so partial drains fire often
        let mut buf = Vec::new();
        let mut offered = 0u64;
        for round in 0..50 {
            for _ in 0..6 {
                tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
                offered += 1;
            }
            handle.drain_into(&mut buf);
            assert_eq!(
                handle.captured_total(),
                handle.drained_total() + handle.buffered() as u64,
                "conservation must survive chaos (round {round})"
            );
            assert_eq!(offered, handle.captured_total() + handle.dropped_overflow());
        }
        let (partials, _) = handle.chaos_counts().unwrap();
        assert!(partials > 0, "chaos at 20x intensity must fire at least once");
    }

    #[test]
    fn chaos_truncation_clips_wire_len_but_loses_no_record() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        handle.set_chaos(77, 100.0); // 100x => truncation probability 1.0
        for _ in 0..20 {
            tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        }
        // Drain-partial chaos also always fires at this intensity, so
        // keep draining until the buffer empties.
        let mut records = Vec::new();
        while handle.buffered() > 0 {
            records.extend(handle.drain());
        }
        assert_eq!(records.len(), 20, "truncation must never drop records");
        let (_, truncated) = handle.chaos_counts().unwrap();
        assert_eq!(truncated, 20);
        let untouched = {
            let (mut tap2, handle2) = sniffer_pair(SnifferFilter::All);
            tap2.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
            handle2.drain()[0].wire_len
        };
        for r in &records {
            assert!(r.wire_len >= 1);
            assert!(r.wire_len < untouched, "truncated record must report a shorter wire");
        }
    }

    #[test]
    fn drain_up_to_caps_the_take_and_conserves() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        for _ in 0..10 {
            tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        }
        let mut buf = Vec::new();
        handle.drain_up_to(4, &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(handle.buffered(), 6);
        assert_eq!(handle.drained_total(), 4);
        handle.drain_up_to(0, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(handle.buffered(), 6);
        handle.drain_up_to(usize::MAX, &mut buf);
        assert_eq!(buf.len(), 6);
        assert_eq!(handle.buffered(), 0);
        assert_eq!(handle.captured_total(), handle.drained_total());
    }

    #[test]
    fn drain_up_to_keeps_oldest_first_order() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        for i in 0..6u64 {
            let m = TapMeta {
                time: SimTime::from_secs(i),
                link: LinkId::from_raw(0),
                receiver: NodeId::from_raw(0),
            };
            tap.on_packet(&m, &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
        }
        let mut buf = Vec::new();
        handle.drain_up_to(3, &mut buf);
        let first: Vec<_> = buf.iter().map(|r| r.ts).collect();
        handle.drain_up_to(3, &mut buf);
        let second: Vec<_> = buf.iter().map(|r| r.ts).collect();
        assert!(first.iter().max() < second.iter().min());
    }

    #[test]
    fn drain_up_to_chaos_preserves_conservation() {
        let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
        handle.set_chaos(99, 20.0);
        let mut buf = Vec::new();
        for round in 0..50 {
            for _ in 0..6 {
                tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
            }
            handle.drain_up_to(4, &mut buf);
            assert!(buf.len() <= 4, "round {round}");
            assert_eq!(
                handle.captured_total(),
                handle.drained_total() + handle.buffered() as u64,
                "conservation must survive capped chaos drains (round {round})"
            );
        }
        let (partials, _) = handle.chaos_counts().unwrap();
        assert!(partials > 0);
    }

    #[test]
    fn chaos_replays_identically_per_swarm_seed() {
        let run = |seed: u64| {
            let (mut tap, handle) = sniffer_pair(SnifferFilter::All);
            handle.set_chaos(seed, 10.0);
            let mut buf = Vec::new();
            let mut trace = Vec::new();
            for _ in 0..40 {
                for _ in 0..4 {
                    tap.on_packet(&meta(), &udp(Addr::new(1, 0, 0, 1), Addr::new(2, 0, 0, 1)));
                }
                handle.drain_into(&mut buf);
                trace.push((buf.len(), handle.buffered()));
            }
            (trace, handle.chaos_counts().unwrap())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
