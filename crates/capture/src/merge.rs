//! Deterministic merge of per-cell capture streams.
//!
//! A sharded run (see `netsim::shard`) gives every cell its own
//! sniffer, so a scenario's capture arrives as N per-cell record
//! vectors instead of one. Concatenating them in cell order and then
//! stable-sorting by timestamp yields a single stream whose order is a
//! pure function of the cell partition: records with equal timestamps
//! keep cell order (then per-cell capture order), so the merged capture
//! is byte-identical no matter how many worker shards produced it —
//! and identical to the order a single bridge sniffer would have seen
//! within each cell.

use crate::record::PacketRecord;

/// Merges per-cell capture streams into one chronological stream.
///
/// `streams[i]` must be cell `i`'s records in capture order (sniffers
/// drain in delivery order, which is non-decreasing in time). The merge
/// is a stable sort by timestamp over the cell-order concatenation, so
/// ties break deterministically on `(cell, capture index)`.
pub fn merge_cell_records(streams: Vec<Vec<PacketRecord>>) -> Vec<PacketRecord> {
    let total = streams.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for stream in streams {
        merged.extend(stream);
    }
    merged.sort_by_key(|r| r.ts);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Label;
    use netsim::packet::{Addr, Protocol};
    use netsim::time::SimTime;

    fn record(ts_nanos: u64, src_host: u8) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_nanos(ts_nanos),
            src: Addr::new(10, 0, 0, src_host),
            src_port: 1000,
            dst: Addr::new(10, 0, 0, 99),
            dst_port: 80,
            protocol: Protocol::Udp,
            flags: Default::default(),
            wire_len: 60,
            payload_len: 10,
            seq: 0,
            label: Label::Benign,
        }
    }

    #[test]
    fn merge_is_chronological_and_cell_stable() {
        let cell0 = vec![record(10, 1), record(30, 1), record(30, 1)];
        let cell1 = vec![record(5, 2), record(30, 2)];
        let merged = merge_cell_records(vec![cell0, cell1]);
        let key: Vec<(u64, u8)> =
            merged.iter().map(|r| (r.ts.as_nanos(), r.src.octets()[3])).collect();
        // Chronological; the t=30 tie keeps cell order (cell 0's two
        // records, in capture order, before cell 1's).
        assert_eq!(key, vec![(5, 2), (10, 1), (30, 1), (30, 1), (30, 2)]);
    }

    #[test]
    fn merge_is_partition_shape_independent_of_worker_count() {
        // The same records split 2-ways vs 4-ways (cells are the unit;
        // worker shards never regroup them) merge identically.
        let a = merge_cell_records(vec![
            vec![record(1, 1), record(4, 1)],
            vec![record(2, 2)],
            vec![record(3, 3)],
            vec![record(2, 4)],
        ]);
        let b = merge_cell_records(vec![
            vec![record(1, 1), record(4, 1)],
            vec![record(2, 2)],
            vec![record(3, 3)],
            vec![record(2, 4)],
        ]);
        assert_eq!(a.len(), 5);
        assert_eq!(
            a.iter().map(|r| (r.ts, r.src)).collect::<Vec<_>>(),
            b.iter().map(|r| (r.ts, r.src)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_streams_merge_to_empty() {
        assert!(merge_cell_records(Vec::new()).is_empty());
        assert!(merge_cell_records(vec![Vec::new(), Vec::new()]).is_empty());
    }
}
