//! pcap export: captures open directly in Wireshark/tcpdump.
//!
//! DDoSim's workflow analyses testbed traffic with external tools like
//! Wireshark (§III-A). This module serialises [`PacketRecord`]s into the
//! classic libpcap file format (the `0xa1b2c3d4` magic, LINKTYPE_RAW:
//! IPv4 packets without a link-layer header), synthesising well-formed
//! IPv4 + TCP/UDP headers from the recorded attributes. Payload bytes are
//! zero filler of the recorded length — the sizes, flags, addresses,
//! ports and timing are what the analysis tools consume.

use std::io::{self, Write};

use netsim::packet::Protocol;

use crate::record::PacketRecord;

/// libpcap magic (microsecond timestamps, little-endian).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin with the IPv4 header.
const LINKTYPE_RAW: u32 = 101;
/// Snap length (we always write whole packets).
const SNAPLEN: u32 = 65_535;

/// Writes a pcap file containing the given records.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_pcap<W: Write>(mut out: W, records: &[PacketRecord]) -> io::Result<()> {
    // Global header.
    out.write_all(&PCAP_MAGIC.to_le_bytes())?;
    out.write_all(&2u16.to_le_bytes())?; // version major
    out.write_all(&4u16.to_le_bytes())?; // version minor
    out.write_all(&0i32.to_le_bytes())?; // thiszone
    out.write_all(&0u32.to_le_bytes())?; // sigfigs
    out.write_all(&SNAPLEN.to_le_bytes())?;
    out.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    for record in records {
        let frame = synthesize_frame(record);
        let ts_nanos = record.ts.as_nanos();
        let secs = (ts_nanos / 1_000_000_000) as u32;
        let micros = ((ts_nanos % 1_000_000_000) / 1_000) as u32;
        out.write_all(&secs.to_le_bytes())?;
        out.write_all(&micros.to_le_bytes())?;
        out.write_all(&(frame.len() as u32).to_le_bytes())?;
        out.write_all(&(frame.len() as u32).to_le_bytes())?;
        out.write_all(&frame)?;
    }
    Ok(())
}

/// Builds the on-the-wire bytes of a record: IPv4 header + transport
/// header + zero payload of the recorded length.
pub fn synthesize_frame(record: &PacketRecord) -> Vec<u8> {
    let transport_len = match record.protocol {
        Protocol::Tcp => 20,
        Protocol::Udp => 8,
    };
    let payload_len = record.wire_len.saturating_sub(20 + transport_len) as usize;
    let total_len = 20 + transport_len as usize + payload_len;
    let mut frame = Vec::with_capacity(total_len);

    // IPv4 header (20 bytes, no options).
    frame.push(0x45); // version 4, IHL 5
    frame.push(0); // DSCP/ECN
    frame.extend_from_slice(&(total_len as u16).to_be_bytes());
    frame.extend_from_slice(&[0, 0]); // identification
    frame.extend_from_slice(&[0x40, 0]); // flags: don't fragment
    frame.push(64); // TTL
    frame.push(record.protocol.number());
    frame.extend_from_slice(&[0, 0]); // checksum placeholder
    frame.extend_from_slice(&record.src.octets());
    frame.extend_from_slice(&record.dst.octets());
    // Fill in the header checksum so tools don't flag the frame.
    let checksum = ipv4_checksum(&frame[..20]);
    frame[10..12].copy_from_slice(&checksum.to_be_bytes());

    match record.protocol {
        Protocol::Tcp => {
            frame.extend_from_slice(&record.src_port.to_be_bytes());
            frame.extend_from_slice(&record.dst_port.to_be_bytes());
            frame.extend_from_slice(&record.seq.to_be_bytes());
            frame.extend_from_slice(&0u32.to_be_bytes()); // ack number
            frame.push(0x50); // data offset 5
            frame.push(record.flags.bits());
            frame.extend_from_slice(&u16::MAX.to_be_bytes()); // window
            frame.extend_from_slice(&[0, 0]); // checksum (unverified)
            frame.extend_from_slice(&[0, 0]); // urgent pointer
        }
        Protocol::Udp => {
            frame.extend_from_slice(&record.src_port.to_be_bytes());
            frame.extend_from_slice(&record.dst_port.to_be_bytes());
            frame.extend_from_slice(&((8 + payload_len) as u16).to_be_bytes());
            frame.extend_from_slice(&[0, 0]); // checksum (optional in v4)
        }
    }
    frame.resize(total_len, 0);
    frame
}

/// RFC 1071 internet checksum over an IPv4 header.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Label;
    use netsim::packet::TcpFlags;
    use netsim::time::SimTime;
    use netsim::Addr;

    fn record(protocol: Protocol, wire_len: u32) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(1_234),
            src: Addr::new(10, 0, 0, 5),
            src_port: 50_000,
            dst: Addr::new(10, 0, 0, 2),
            dst_port: 80,
            protocol,
            flags: if protocol == Protocol::Tcp { TcpFlags::SYN } else { TcpFlags::EMPTY },
            wire_len,
            payload_len: wire_len.saturating_sub(40),
            seq: 42,
            label: Label::Benign,
        }
    }

    #[test]
    fn pcap_file_structure_is_valid() {
        let records = vec![record(Protocol::Tcp, 40), record(Protocol::Udp, 540)];
        let mut buf = Vec::new();
        write_pcap(&mut buf, &records).unwrap();

        // Global header.
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), PCAP_MAGIC);
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(buf[20..24].try_into().unwrap()), LINKTYPE_RAW);

        // First record header at offset 24.
        let secs = u32::from_le_bytes(buf[24..28].try_into().unwrap());
        let micros = u32::from_le_bytes(buf[28..32].try_into().unwrap());
        assert_eq!(secs, 1);
        assert_eq!(micros, 234_000);
        let caplen = u32::from_le_bytes(buf[32..36].try_into().unwrap()) as usize;
        assert_eq!(caplen, 40, "TCP SYN is 20 IPv4 + 20 TCP bytes");

        // Walk both packets to verify framing consistency.
        let mut offset = 24;
        for expected_len in [40usize, 540] {
            let caplen =
                u32::from_le_bytes(buf[offset + 8..offset + 12].try_into().unwrap()) as usize;
            assert_eq!(caplen, expected_len);
            offset += 16 + caplen;
        }
        assert_eq!(offset, buf.len(), "no trailing bytes");
    }

    #[test]
    fn tcp_frame_fields_are_big_endian_correct() {
        let frame = synthesize_frame(&record(Protocol::Tcp, 40));
        assert_eq!(frame.len(), 40);
        assert_eq!(frame[0], 0x45);
        assert_eq!(frame[9], 6, "protocol TCP");
        assert_eq!(&frame[12..16], &[10, 0, 0, 5], "source address");
        assert_eq!(&frame[16..20], &[10, 0, 0, 2], "destination address");
        assert_eq!(u16::from_be_bytes(frame[20..22].try_into().unwrap()), 50_000);
        assert_eq!(u16::from_be_bytes(frame[22..24].try_into().unwrap()), 80);
        assert_eq!(u32::from_be_bytes(frame[24..28].try_into().unwrap()), 42, "seq");
        assert_eq!(frame[33], TcpFlags::SYN.bits());
    }

    #[test]
    fn udp_frame_length_field_matches() {
        let frame = synthesize_frame(&record(Protocol::Udp, 540));
        assert_eq!(frame.len(), 540);
        assert_eq!(frame[9], 17, "protocol UDP");
        let udp_len = u16::from_be_bytes(frame[24..26].try_into().unwrap());
        assert_eq!(udp_len as usize, 540 - 20, "UDP header + payload");
    }

    #[test]
    fn ipv4_checksum_validates() {
        let frame = synthesize_frame(&record(Protocol::Tcp, 40));
        // Recomputing the checksum over the header (including the stored
        // checksum) must yield zero.
        let mut sum = 0u32;
        for chunk in frame[..20].chunks(2) {
            sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        assert_eq!(!(sum as u16), 0);
    }
}
