//! Labelled packet records — the raw material of the IDS dataset.

use netsim::packet::{Packet, Protocol, Provenance, TcpFlags};
use netsim::time::SimTime;
use netsim::Addr;
use serde::{Deserialize, Serialize};

/// Ground-truth class of a captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Legitimate traffic.
    Benign,
    /// Botnet traffic (scanning, C2, floods, and the victim's direct
    /// responses to them).
    Malicious,
}

impl From<Provenance> for Label {
    fn from(p: Provenance) -> Self {
        match p {
            Provenance::Benign => Label::Benign,
            Provenance::Malicious => Label::Malicious,
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Benign => f.write_str("benign"),
            Label::Malicious => f.write_str("malicious"),
        }
    }
}

/// One captured packet, reduced to the attributes the paper's feature
/// extractor consumes (§IV-A: timestamps, addresses, protocol, ports,
/// flags, sizes) plus the ground-truth label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Source address (as on the wire; may be spoofed).
    pub src: Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination address.
    pub dst: Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// TCP flags (empty for UDP).
    pub flags: TcpFlags,
    /// Total on-the-wire bytes.
    pub wire_len: u32,
    /// Payload bytes.
    pub payload_len: u32,
    /// TCP sequence number (0 for UDP).
    pub seq: u32,
    /// Ground-truth class.
    pub label: Label,
}

impl PacketRecord {
    /// Builds a record from a delivered packet.
    pub fn from_packet(ts: SimTime, packet: &Packet) -> Self {
        PacketRecord {
            ts,
            src: packet.src,
            src_port: packet.transport.src_port(),
            dst: packet.dst,
            dst_port: packet.transport.dst_port(),
            protocol: packet.protocol(),
            flags: packet.tcp_flags(),
            wire_len: packet.wire_len() as u32,
            payload_len: packet.payload.len() as u32,
            seq: packet.tcp_seq().unwrap_or(0),
            label: packet.provenance.into(),
        }
    }

    /// The one-second window index this record falls into.
    pub fn window_index(&self, window_secs: u64) -> u64 {
        self.ts.whole_secs() / window_secs.max(1)
    }

    /// `true` for a bare SYN (connection attempt).
    pub fn is_bare_syn(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && !self.flags.contains(TcpFlags::ACK)
    }

    /// The record's five-tuple flow key — the identity under which the
    /// feature extractor aggregates per-flow state.
    pub fn flow_key(&self) -> (u32, u16, u32, u16, u8) {
        (self.src.to_bits(), self.src_port, self.dst.to_bits(), self.dst_port, self.protocol.number())
    }

    /// [`PacketRecord::flow_key`] packed into one integer —
    /// `src(32) | src_port(16) | dst(32) | dst_port(16) | proto(8)`
    /// from the high bits down. The hot extraction path hashes one
    /// word pair instead of five tuple fields; unpack with
    /// [`flow_key_src`] / [`flow_key_dst_port`].
    pub fn flow_key_packed(&self) -> u128 {
        (self.src.to_bits() as u128) << 72
            | (self.src_port as u128) << 56
            | (self.dst.to_bits() as u128) << 24
            | (self.dst_port as u128) << 8
            | self.protocol.number() as u128
    }
}

/// Source address bits of a [`PacketRecord::flow_key_packed`] key.
pub fn flow_key_src(key: u128) -> u32 {
    (key >> 72) as u32
}

/// Destination port of a [`PacketRecord::flow_key_packed`] key.
pub fn flow_key_dst_port(key: u128) -> u16 {
    (key >> 8) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim::packet::{TcpHeader, Transport};

    #[test]
    fn record_copies_packet_attributes() {
        let p = Packet {
            src: Addr::new(10, 0, 0, 5),
            dst: Addr::new(10, 0, 0, 2),
            ttl: 64,
            transport: Transport::Tcp(TcpHeader {
                src_port: 5555,
                dst_port: 80,
                seq: 42,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 100,
            }),
            payload: Bytes::from_static(b"xyz"),
            provenance: Provenance::Malicious,
        };
        let r = PacketRecord::from_packet(SimTime::from_secs(3), &p);
        assert_eq!(r.src_port, 5555);
        assert_eq!(r.dst_port, 80);
        assert_eq!(r.protocol, Protocol::Tcp);
        assert_eq!(r.payload_len, 3);
        assert_eq!(r.seq, 42);
        assert_eq!(r.label, Label::Malicious);
        assert!(r.is_bare_syn());
        assert_eq!(
            r.flow_key(),
            (r.src.to_bits(), 5555, r.dst.to_bits(), 80, Protocol::Tcp.number())
        );
    }

    #[test]
    fn window_index_buckets_time() {
        let p = Packet::udp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), 1, 2, Bytes::new());
        let r = PacketRecord::from_packet(SimTime::from_millis(4_500), &p);
        assert_eq!(r.window_index(1), 4);
        assert_eq!(r.window_index(2), 2);
        assert_eq!(r.window_index(0), 4, "zero window clamps to one second");
    }

    #[test]
    fn label_display_and_conversion() {
        assert_eq!(Label::from(Provenance::Benign), Label::Benign);
        assert_eq!(Label::Malicious.to_string(), "malicious");
    }
}
