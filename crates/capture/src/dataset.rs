//! Labelled packet datasets: accumulation, statistics, splits and CSV.
//!
//! The paper's training run produces "3,012,885 malicious packets and
//! 2,243,634 benign packets" over 10 minutes — a nearly balanced labelled
//! dataset assembled exactly like [`Dataset`] assembles sniffer records.

use std::io::{self, BufRead, Write};

use netsim::packet::{Protocol, TcpFlags};
use netsim::time::SimTime;
use netsim::{Addr, SimRng};
use serde::{Deserialize, Serialize};

use crate::record::{Label, PacketRecord};

/// Class composition of a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Benign packets.
    pub benign: u64,
    /// Malicious packets.
    pub malicious: u64,
}

impl ClassCounts {
    /// Total packets.
    pub fn total(&self) -> u64 {
        self.benign + self.malicious
    }

    /// Fraction of packets that are malicious, in `[0, 1]`.
    pub fn malicious_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.malicious as f64 / self.total() as f64
        }
    }

    /// Class-balance ratio `min/max` in `[0, 1]`; 1 is perfectly balanced.
    pub fn balance(&self) -> f64 {
        let (lo, hi) = (self.benign.min(self.malicious), self.benign.max(self.malicious));
        if hi == 0 {
            1.0
        } else {
            lo as f64 / hi as f64
        }
    }
}

/// A labelled capture, ordered by timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    records: Vec<PacketRecord>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dataset from records (sorted by time if needed).
    pub fn from_records(mut records: Vec<PacketRecord>) -> Self {
        if !records.windows(2).all(|w| w[0].ts <= w[1].ts) {
            records.sort_by_key(|r| r.ts);
        }
        Dataset { records }
    }

    /// Appends records, keeping time order.
    pub fn extend_records(&mut self, records: impl IntoIterator<Item = PacketRecord>) {
        self.records.extend(records);
        if !self.records.windows(2).all(|w| w[0].ts <= w[1].ts) {
            self.records.sort_by_key(|r| r.ts);
        }
    }

    /// The records, in time order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Class composition.
    pub fn class_counts(&self) -> ClassCounts {
        let mut counts = ClassCounts::default();
        for r in &self.records {
            match r.label {
                Label::Benign => counts.benign += 1,
                Label::Malicious => counts.malicious += 1,
            }
        }
        counts
    }

    /// Splits chronologically: the first `fraction` of *time* (not
    /// packets) becomes the training set — matching the paper's separate
    /// 10-minute training and 5-minute detection runs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn split_by_time(&self, fraction: f64) -> (Dataset, Dataset) {
        assert!(fraction > 0.0 && fraction < 1.0, "fraction must be in (0, 1)");
        if self.records.is_empty() {
            return (Dataset::new(), Dataset::new());
        }
        let start = self.records.first().expect("non-empty").ts.as_nanos();
        let end = self.records.last().expect("non-empty").ts.as_nanos();
        let cut = start + ((end - start) as f64 * fraction) as u64;
        let idx = self.records.partition_point(|r| r.ts.as_nanos() <= cut);
        (
            Dataset { records: self.records[..idx].to_vec() },
            Dataset { records: self.records[idx..].to_vec() },
        )
    }

    /// Shuffled random split by packet (for train-time metric estimation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn split_random(&self, fraction: f64, rng: &mut SimRng) -> (Dataset, Dataset) {
        assert!(fraction > 0.0 && fraction < 1.0, "fraction must be in (0, 1)");
        let mut indices: Vec<usize> = (0..self.records.len()).collect();
        rng.shuffle(&mut indices);
        let cut = (self.records.len() as f64 * fraction).round() as usize;
        let pick = |ix: &[usize]| {
            let mut v: Vec<PacketRecord> = ix.iter().map(|&i| self.records[i]).collect();
            v.sort_by_key(|r| r.ts);
            Dataset { records: v }
        };
        (pick(&indices[..cut]), pick(&indices[cut..]))
    }

    /// Time span covered by the dataset.
    pub fn duration_secs(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.ts.saturating_since(first.ts).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Records within the inclusive virtual-time range `[from, to]`.
    pub fn between(&self, from: SimTime, to: SimTime) -> Dataset {
        Dataset {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.ts >= from && r.ts <= to)
                .collect(),
        }
    }

    /// Only the records with the given label.
    pub fn with_label(&self, label: Label) -> Dataset {
        Dataset { records: self.records.iter().copied().filter(|r| r.label == label).collect() }
    }

    /// Concatenates two datasets, keeping time order.
    pub fn merged(&self, other: &Dataset) -> Dataset {
        let mut records = self.records.clone();
        records.extend_from_slice(&other.records);
        Dataset::from_records(records)
    }

    /// Writes the dataset as CSV (with header).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "ts_ns,src,src_port,dst,dst_port,protocol,flags,wire_len,payload_len,seq,label")?;
        for r in &self.records {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                r.ts.as_nanos(),
                r.src,
                r.src_port,
                r.dst,
                r.dst_port,
                r.protocol.number(),
                r.flags.bits(),
                r.wire_len,
                r.payload_len,
                r.seq,
                r.label,
            )?;
        }
        Ok(())
    }

    /// Reads a dataset from CSV produced by [`Dataset::write_csv`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed rows.
    pub fn read_csv<R: BufRead>(input: R) -> io::Result<Dataset> {
        let mut records = Vec::new();
        for (i, line) in input.lines().enumerate() {
            let line = line?;
            if i == 0 || line.is_empty() {
                continue; // header
            }
            let record = parse_csv_row(&line).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad csv row {}: {line}", i + 1))
            })?;
            records.push(record);
        }
        Ok(Dataset::from_records(records))
    }
}

fn parse_csv_row(line: &str) -> Option<PacketRecord> {
    let mut f = line.split(',');
    let ts = SimTime::from_nanos(f.next()?.parse().ok()?);
    let src = parse_addr(f.next()?)?;
    let src_port = f.next()?.parse().ok()?;
    let dst = parse_addr(f.next()?)?;
    let dst_port = f.next()?.parse().ok()?;
    let protocol = match f.next()? {
        "6" => Protocol::Tcp,
        "17" => Protocol::Udp,
        _ => return None,
    };
    let flags = TcpFlags::from_bits(f.next()?.parse().ok()?);
    let wire_len = f.next()?.parse().ok()?;
    let payload_len = f.next()?.parse().ok()?;
    let seq = f.next()?.parse().ok()?;
    let label = match f.next()? {
        "benign" => Label::Benign,
        "malicious" => Label::Malicious,
        _ => return None,
    };
    Some(PacketRecord { ts, src, src_port, dst, dst_port, protocol, flags, wire_len, payload_len, seq, label })
}

fn parse_addr(s: &str) -> Option<Addr> {
    let mut octets = [0u8; 4];
    let mut parts = s.split('.');
    for octet in &mut octets {
        *octet = parts.next()?.parse().ok()?;
    }
    parts.next().is_none().then_some(Addr::from(octets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts_ms: u64, label: Label) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            src: Addr::new(10, 0, 0, 1),
            src_port: 1234,
            dst: Addr::new(10, 0, 0, 2),
            dst_port: 80,
            protocol: Protocol::Tcp,
            flags: TcpFlags::SYN,
            wire_len: 40,
            payload_len: 0,
            seq: 7,
            label,
        }
    }

    #[test]
    fn class_counts_and_balance() {
        let ds = Dataset::from_records(vec![
            record(1, Label::Benign),
            record(2, Label::Malicious),
            record(3, Label::Malicious),
        ]);
        let counts = ds.class_counts();
        assert_eq!(counts.benign, 1);
        assert_eq!(counts.malicious, 2);
        assert_eq!(counts.total(), 3);
        assert!((counts.malicious_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((counts.balance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_records_sorts_by_time() {
        let ds = Dataset::from_records(vec![record(5, Label::Benign), record(1, Label::Benign)]);
        assert!(ds.records()[0].ts < ds.records()[1].ts);
    }

    #[test]
    fn time_split_is_chronological() {
        let records: Vec<PacketRecord> = (0..100).map(|i| record(i * 100, Label::Benign)).collect();
        let ds = Dataset::from_records(records);
        let (train, test) = ds.split_by_time(0.7);
        assert_eq!(train.len() + test.len(), 100);
        assert!(train.len() > 60 && train.len() < 80, "train {}", train.len());
        let train_max = train.records().last().unwrap().ts;
        let test_min = test.records().first().unwrap().ts;
        assert!(train_max < test_min);
    }

    #[test]
    fn random_split_partitions() {
        let records: Vec<PacketRecord> = (0..100)
            .map(|i| record(i, if i % 2 == 0 { Label::Benign } else { Label::Malicious }))
            .collect();
        let ds = Dataset::from_records(records);
        let mut rng = SimRng::seed_from(4);
        let (a, b) = ds.split_random(0.8, &mut rng);
        assert_eq!(a.len(), 80);
        assert_eq!(b.len(), 20);
        // Both classes present in both splits with overwhelming probability.
        assert!(a.class_counts().benign > 0 && a.class_counts().malicious > 0);
    }

    #[test]
    fn between_and_label_filters() {
        let ds = Dataset::from_records(vec![
            record(100, Label::Benign),
            record(1_500, Label::Malicious),
            record(2_900, Label::Benign),
        ]);
        let mid = ds.between(SimTime::from_millis(1_000), SimTime::from_millis(2_000));
        assert_eq!(mid.len(), 1);
        assert_eq!(mid.records()[0].label, Label::Malicious);
        assert_eq!(ds.with_label(Label::Benign).len(), 2);
        assert_eq!(ds.with_label(Label::Malicious).class_counts().malicious, 1);
    }

    #[test]
    fn merged_keeps_time_order() {
        let a = Dataset::from_records(vec![record(5, Label::Benign), record(50, Label::Benign)]);
        let b = Dataset::from_records(vec![record(20, Label::Malicious)]);
        let merged = a.merged(&b);
        assert_eq!(merged.len(), 3);
        assert!(merged.records().windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn csv_roundtrip_preserves_records() {
        let ds = Dataset::from_records(vec![
            record(1, Label::Benign),
            record(2, Label::Malicious),
        ]);
        let mut buf = Vec::new();
        ds.write_csv(&mut buf).unwrap();
        let back = Dataset::read_csv(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn malformed_csv_errors() {
        let bad = "header\nnot,a,row\n";
        assert!(Dataset::read_csv(io::BufReader::new(bad.as_bytes())).is_err());
    }

    #[test]
    fn duration_spans_first_to_last() {
        let ds = Dataset::from_records(vec![record(500, Label::Benign), record(2_500, Label::Benign)]);
        assert!((ds.duration_secs() - 2.0).abs() < 1e-9);
        assert_eq!(Dataset::new().duration_secs(), 0.0);
    }
}
