//! # capture — packet capture and labelled datasets
//!
//! The Wireshark/tcpdump substitute of the DDoShield-IoT reproduction.
//! A [`sniffer::Sniffer`] taps the simulated bridge and converts every
//! delivered packet into a [`record::PacketRecord`] carrying the
//! attributes the feature extractor consumes plus a ground-truth
//! [`record::Label`] derived from the packet's provenance. Records
//! accumulate into [`dataset::Dataset`]s that support class statistics,
//! chronological / random splits, CSV export-import, and pcap export
//! ([`pcap`]) so captures open directly in Wireshark — the external
//! analysis workflow DDoSim uses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod merge;
pub mod pcap;
pub mod record;
pub mod sniffer;
pub mod trace;

pub use dataset::{ClassCounts, Dataset};
pub use merge::merge_cell_records;
pub use pcap::{synthesize_frame, write_pcap};
pub use record::{Label, PacketRecord};
pub use sniffer::{bounded_sniffer_pair, sniffer_pair, Sniffer, SnifferFilter, SnifferHandle};
pub use trace::{format_packet, trace_pair, TextTrace, TraceHandle};
