//! Property-based tests of dataset invariants: CSV round-trips, splits
//! and class accounting for arbitrary record collections.

use std::io::BufReader;

use capture::dataset::Dataset;
use capture::record::{Label, PacketRecord};
use netsim::packet::{Protocol, TcpFlags};
use netsim::rng::SimRng;
use netsim::time::SimTime;
use netsim::Addr;
use proptest::prelude::*;

prop_compose! {
    fn record_strategy()(
        ts_ns in 0u64..60_000_000_000,
        src in any::<u32>(),
        dst in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        tcp in any::<bool>(),
        flag_bits in 0u8..32,
        wire_len in 28u32..65_535,
        seq in any::<u32>(),
        malicious in any::<bool>(),
    ) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_nanos(ts_ns),
            src: Addr::from_bits(src),
            src_port,
            dst: Addr::from_bits(dst),
            dst_port,
            protocol: if tcp { Protocol::Tcp } else { Protocol::Udp },
            flags: TcpFlags::from_bits(flag_bits),
            wire_len,
            payload_len: wire_len.saturating_sub(28),
            seq,
            label: if malicious { Label::Malicious } else { Label::Benign },
        }
    }
}

proptest! {
    /// CSV export/import is the identity on datasets.
    #[test]
    fn csv_roundtrip(records in proptest::collection::vec(record_strategy(), 0..200)) {
        let dataset = Dataset::from_records(records);
        let mut buf = Vec::new();
        dataset.write_csv(&mut buf).unwrap();
        let back = Dataset::read_csv(BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(back, dataset);
    }

    /// Class counts partition the dataset and balance is in [0, 1].
    #[test]
    fn class_counts_partition(records in proptest::collection::vec(record_strategy(), 0..300)) {
        let dataset = Dataset::from_records(records);
        let counts = dataset.class_counts();
        prop_assert_eq!(counts.total() as usize, dataset.len());
        prop_assert!((0.0..=1.0).contains(&counts.balance()));
        prop_assert!((0.0..=1.0).contains(&counts.malicious_fraction()));
    }

    /// Chronological splits are ordered partitions of the records.
    #[test]
    fn time_split_partitions(
        records in proptest::collection::vec(record_strategy(), 2..300),
        fraction in 0.1f64..0.9,
    ) {
        let dataset = Dataset::from_records(records);
        let (a, b) = dataset.split_by_time(fraction);
        prop_assert_eq!(a.len() + b.len(), dataset.len());
        if let (Some(last_a), Some(first_b)) = (a.records().last(), b.records().first()) {
            prop_assert!(last_a.ts <= first_b.ts);
        }
        // Re-merging restores the class counts.
        let mut counts = a.class_counts();
        let cb = b.class_counts();
        counts.benign += cb.benign;
        counts.malicious += cb.malicious;
        prop_assert_eq!(counts, dataset.class_counts());
    }

    /// Random splits are exact partitions with the requested sizes.
    #[test]
    fn random_split_partitions(
        records in proptest::collection::vec(record_strategy(), 2..300),
        fraction in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let dataset = Dataset::from_records(records);
        let mut rng = SimRng::seed_from(seed);
        let (a, b) = dataset.split_random(fraction, &mut rng);
        prop_assert_eq!(a.len() + b.len(), dataset.len());
        let expected = (dataset.len() as f64 * fraction).round() as usize;
        prop_assert_eq!(a.len(), expected);
    }

    /// `from_records` output is always time-sorted.
    #[test]
    fn datasets_are_time_sorted(records in proptest::collection::vec(record_strategy(), 0..200)) {
        let dataset = Dataset::from_records(records);
        prop_assert!(dataset.records().windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
