//! Feature scaling: min-max and z-score normalisation.
//!
//! Scalers are fitted on the training matrix and reused unchanged at
//! detection time (fitting on live traffic would leak the test
//! distribution).

use ml::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// The scaling method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingMethod {
    /// Map each feature to `[0, 1]` by its training min/max.
    MinMax,
    /// Standardise each feature to zero mean and unit variance.
    ZScore,
}

/// A fitted per-feature scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    method: ScalingMethod,
    /// Per-feature (offset, scale): transformed = (x - offset) / scale.
    params: Vec<(f64, f64)>,
}

impl Scaler {
    /// Fits a scaler on a training matrix (rows = samples).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows are ragged.
    pub fn fit(method: ScalingMethod, data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on no data");
        let dims = data[0].len();
        assert!(data.iter().all(|row| row.len() == dims), "ragged feature matrix");
        let params = (0..dims)
            .map(|j| {
                let column = data.iter().map(|row| row[j]);
                match method {
                    ScalingMethod::MinMax => {
                        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                        for v in column {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        let span = hi - lo;
                        (lo, if span.abs() < 1e-12 { 1.0 } else { span })
                    }
                    ScalingMethod::ZScore => {
                        let values: Vec<f64> = column.collect();
                        let n = values.len() as f64;
                        let mean = values.iter().sum::<f64>() / n;
                        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                        let std = var.sqrt();
                        (mean, if std < 1e-12 { 1.0 } else { std })
                    }
                }
            })
            .collect();
        Scaler { method, params }
    }

    /// The method this scaler was fitted with.
    pub fn method(&self) -> ScalingMethod {
        self.method
    }

    /// Number of features the scaler expects.
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// Transforms one sample in place.
    ///
    /// # Panics
    ///
    /// Panics if the sample arity differs from the fitted arity.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.params.len(), "feature arity mismatch");
        for (value, &(offset, scale)) in row.iter_mut().zip(&self.params) {
            *value = (*value - offset) / scale;
        }
    }

    /// Transforms a whole matrix in place.
    pub fn transform(&self, data: &mut [Vec<f64>]) {
        for row in data {
            self.transform_row(row);
        }
    }

    /// Fits on `data` and transforms it in place, returning the scaler.
    pub fn fit_transform(method: ScalingMethod, data: &mut [Vec<f64>]) -> Self {
        let scaler = Scaler::fit(method, data);
        scaler.transform(data);
        scaler
    }

    /// Fits a scaler on a flat feature matrix. Accumulation runs per
    /// column in row order, so the fitted parameters are bit-identical
    /// to [`Scaler::fit`] on the same rows.
    ///
    /// # Panics
    ///
    /// Panics if `data` has no rows.
    pub fn fit_matrix(method: ScalingMethod, data: &FeatureMatrix) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on no data");
        let dims = data.n_cols();
        let params = match method {
            ScalingMethod::MinMax => {
                let mut lo = vec![f64::INFINITY; dims];
                let mut hi = vec![f64::NEG_INFINITY; dims];
                for row in data.rows() {
                    for (j, &v) in row.iter().enumerate() {
                        lo[j] = lo[j].min(v);
                        hi[j] = hi[j].max(v);
                    }
                }
                lo.iter()
                    .zip(&hi)
                    .map(|(&lo, &hi)| {
                        let span = hi - lo;
                        (lo, if span.abs() < 1e-12 { 1.0 } else { span })
                    })
                    .collect()
            }
            ScalingMethod::ZScore => {
                let n = data.n_rows() as f64;
                let mut sums = vec![0.0; dims];
                for row in data.rows() {
                    for (s, &v) in sums.iter_mut().zip(row) {
                        *s += v;
                    }
                }
                let means: Vec<f64> = sums.iter().map(|s| s / n).collect();
                let mut sq = vec![0.0; dims];
                for row in data.rows() {
                    for (j, &v) in row.iter().enumerate() {
                        sq[j] += (v - means[j]).powi(2);
                    }
                }
                means
                    .iter()
                    .zip(&sq)
                    .map(|(&mean, &sq)| {
                        let std = (sq / n).sqrt();
                        (mean, if std < 1e-12 { 1.0 } else { std })
                    })
                    .collect()
            }
        };
        Scaler { method, params }
    }

    /// Transforms a flat matrix in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix arity differs from the fitted arity.
    pub fn transform_matrix(&self, data: &mut FeatureMatrix) {
        // Split the per-column affine params into two plain slices:
        // LLVM vectorizes the (v - offset) / scale sweep over
        // contiguous slices (packed divides), which the array-of-pairs
        // layout blocks. Element-wise IEEE results are unchanged.
        let offsets: Vec<f64> = self.params.iter().map(|p| p.0).collect();
        let scales: Vec<f64> = self.params.iter().map(|p| p.1).collect();
        for row in data.rows_mut() {
            assert_eq!(row.len(), offsets.len(), "feature arity mismatch");
            for ((value, &offset), &scale) in row.iter_mut().zip(&offsets).zip(&scales) {
                *value = (*value - offset) / scale;
            }
        }
    }

    /// Fits on a flat matrix and transforms it in place, returning the
    /// scaler.
    ///
    /// # Panics
    ///
    /// Panics if `data` has no rows.
    pub fn fit_transform_matrix(method: ScalingMethod, data: &mut FeatureMatrix) -> Self {
        let scaler = Scaler::fit_matrix(method, data);
        scaler.transform_matrix(data);
        scaler
    }

    /// The element-wise mean of several compatible scalers — the shared
    /// preprocessing used in federated settings where no party may pool
    /// raw data to fit a global scaler.
    ///
    /// Returns `None` if the slice is empty or the scalers disagree in
    /// method or arity.
    pub fn average(scalers: &[Scaler]) -> Option<Scaler> {
        let first = scalers.first()?;
        if scalers
            .iter()
            .any(|s| s.method != first.method || s.params.len() != first.params.len())
        {
            return None;
        }
        let n = scalers.len() as f64;
        let params = (0..first.params.len())
            .map(|j| {
                let offset = scalers.iter().map(|s| s.params[j].0).sum::<f64>() / n;
                let scale = scalers.iter().map(|s| s.params[j].1).sum::<f64>() / n;
                (offset, scale)
            })
            .collect();
        Some(Scaler { method: first.method, params })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Vec<Vec<f64>> {
        vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]]
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut data = matrix();
        let scaler = Scaler::fit_transform(ScalingMethod::MinMax, &mut data);
        assert_eq!(scaler.dims(), 2);
        assert_eq!(data[0], vec![0.0, 0.0]);
        assert_eq!(data[2], vec![1.0, 1.0]);
        assert_eq!(data[1], vec![0.5, 0.5]);
    }

    #[test]
    fn zscore_standardises() {
        let mut data = matrix();
        Scaler::fit_transform(ScalingMethod::ZScore, &mut data);
        for j in 0..2 {
            let mean: f64 = data.iter().map(|r| r[j]).sum::<f64>() / 3.0;
            let var: f64 = data.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_do_not_divide_by_zero() {
        let mut data = vec![vec![7.0], vec![7.0]];
        let scaler = Scaler::fit_transform(ScalingMethod::MinMax, &mut data);
        assert!(data.iter().all(|r| r[0].is_finite()));
        let mut row = vec![7.0];
        scaler.transform_row(&mut row);
        assert!(row[0].is_finite());
    }

    #[test]
    fn unseen_data_uses_training_parameters() {
        let mut train = matrix();
        let scaler = Scaler::fit_transform(ScalingMethod::MinMax, &mut train);
        let mut row = vec![20.0, 40.0]; // beyond the training max
        scaler.transform_row(&mut row);
        assert_eq!(row, vec![2.0, 1.5], "extrapolates rather than re-fitting");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let scaler = Scaler::fit(ScalingMethod::MinMax, &matrix());
        let mut row = vec![1.0];
        scaler.transform_row(&mut row);
    }

    #[test]
    fn matrix_fit_matches_row_fit_exactly() {
        for method in [ScalingMethod::MinMax, ScalingMethod::ZScore] {
            let mut rows = matrix();
            let mut flat = FeatureMatrix::from_rows(&rows).unwrap();
            let by_rows = Scaler::fit_transform(method, &mut rows);
            let by_matrix = Scaler::fit_transform_matrix(method, &mut flat);
            assert_eq!(by_rows, by_matrix);
            for (a, b) in rows.iter().zip(flat.rows()) {
                assert_eq!(a.as_slice(), b, "transformed values must be bit-identical");
            }
        }
    }
}
