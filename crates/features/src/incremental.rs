//! Incremental per-flow feature state: busy-window cost scales with
//! *new* records only.
//!
//! The batch oracle ([`crate::window::WindowAccumulator`]) updates
//! three per-record count maps (destination port, source address, flow
//! five-tuple) on every push and re-walks the record slice at close for
//! the order-sensitive mean/std sweeps. [`FlowDelta`] collapses the
//! per-record map work to **one** [`GenMap`] update — the flow's
//! running aggregate ([`FlowAgg`]: packet/byte counts and timestamp
//! span) — and recovers the port/address distributions at window close
//! by folding only the flows touched since the last boundary: each
//! record belongs to exactly one flow, and the flow key carries the
//! destination port and source address, so summing `FlowAgg::packets`
//! per port (and per address) reproduces the per-record tallies
//! exactly. Every downstream reduction over those counts is
//! order-insensitive (entropy sorts, the top-port fold is a plain max,
//! short-lived/repeated-SYN are count filters), so the fold order
//! cannot leak into any output.
//!
//! The two order-sensitive features (packet-length and TCP
//! sequence-number mean/std, two-pass sweeps in record order) are fed
//! from dense logs appended at push time — push order *is* record
//! order — which is what lets [`FlowDelta::close`] drop the record
//! slice from its signature entirely. Same input stream →
//! bit-identical [`crate::window::WindowStats`] and
//! [`crate::window::AckGrace`] carry, pinned by the oracle-equivalence
//! tests below and the repo-level identity fixtures.

use std::collections::HashMap;

use capture::record::{flow_key_dst_port, flow_key_src, PacketRecord};
use netsim::packet::{Protocol, TcpFlags};

use crate::genmap::GenMap;
use crate::window::{entropy_sorted, mean_std_two_pass, AckGrace, WindowStats};

/// Running aggregates of one flow inside the current window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowAgg {
    /// Packets pushed for this flow since the last window boundary.
    pub packets: u64,
    /// Wire bytes pushed for this flow since the last window boundary.
    pub bytes: u64,
    /// Timestamp of the flow's first packet in the window, in nanos.
    pub first_ts_nanos: u64,
    /// Timestamp of the flow's latest packet in the window, in nanos.
    pub last_ts_nanos: u64,
}

impl FlowAgg {
    /// The flow's in-window inter-arrival span in nanoseconds (zero for
    /// a single-packet flow).
    pub fn iat_span_nanos(&self) -> u64 {
        self.last_ts_nanos - self.first_ts_nanos
    }
}

/// Persistent incremental window state: per-flow running aggregates
/// updated as records stream in, folded into
/// [`WindowStats`] at window close.
///
/// The intended driver is [`crate::extract::WindowAggregator`]; the
/// call protocol mirrors the oracle's:
/// [`FlowDelta::push`] per record (or
/// [`FlowDelta::push_handshake_only`] for cached-stats windows), then
/// exactly one of [`FlowDelta::close`] / [`FlowDelta::advance_carry`]
/// at the boundary. Unlike the oracle, `close` needs no record slice:
/// everything order-sensitive was logged at push time.
#[derive(Debug, Default)]
pub struct FlowDelta {
    /// The single per-record map: flow five-tuple (packed,
    /// [`PacketRecord::flow_key_packed`]) → running aggregate.
    flows: GenMap<u128, FlowAgg>,
    /// Folded from `flows` at close (destination-port packet counts).
    dst_ports: GenMap<u16, u64>,
    /// Folded from `flows` at close (source-address packet counts).
    src_addrs: GenMap<u32, u64>,
    syns_per_source: GenMap<(u32, u16), u64>,
    last_syn_ts: GenMap<(u32, u16), f64>,
    first_ack_ts: GenMap<(u32, u16), f64>,
    total_bytes: u64,
    udp_count: u64,
    /// Wire lengths in push order — the order-sensitive mean/std input.
    len_log: Vec<f64>,
    /// TCP sequence numbers in push order (TCP records only).
    seq_log: Vec<f64>,
    /// Reusable scratch for entropy's sorted-count summation.
    count_scratch: Vec<u64>,
    /// Flows touched across all closed windows (observability feed).
    flows_touched_total: u64,
}

impl FlowDelta {
    /// Creates empty incremental state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one record of the current window: one flow-aggregate
    /// update plus handshake tracking and the dense logs.
    pub fn push(&mut self, r: &PacketRecord) {
        let wire_len = r.wire_len as u64;
        self.total_bytes += wire_len;
        let ts_nanos = r.ts.as_nanos();
        let agg = self.flows.entry_or(
            r.flow_key_packed(),
            FlowAgg { packets: 0, bytes: 0, first_ts_nanos: ts_nanos, last_ts_nanos: ts_nanos },
        );
        agg.packets += 1;
        agg.bytes += wire_len;
        agg.last_ts_nanos = ts_nanos;
        self.len_log.push(r.wire_len as f64);
        match r.protocol {
            Protocol::Udp => self.udp_count += 1,
            Protocol::Tcp => {
                self.seq_log.push(r.seq as f64);
                self.track_handshake(r);
            }
        }
    }

    /// Absorbs one record tracking *only* the SYN/ACK handshake state —
    /// all that [`FlowDelta::advance_carry`] needs. Used for windows
    /// whose statistics will be served from cache (`stats_refresh > 1`),
    /// so the §IV-E mitigation's CPU saving is preserved: cached windows
    /// skip the flow-aggregate update and the dense logs entirely. Not
    /// valid before [`FlowDelta::close`].
    pub fn push_handshake_only(&mut self, r: &PacketRecord) {
        if r.protocol == Protocol::Tcp {
            self.track_handshake(r);
        }
    }

    fn track_handshake(&mut self, r: &PacketRecord) {
        let endpoint = (r.src.to_bits(), r.src_port);
        if r.is_bare_syn() {
            *self.syns_per_source.entry_or(endpoint, 0) += 1;
            self.last_syn_ts.insert(endpoint, r.ts.as_secs_f64());
        } else if r.flags.contains(TcpFlags::ACK) {
            // First touch wins: `entry_or` only writes the timestamp the
            // first time this window sees the endpoint ACK.
            self.first_ack_ts.entry_or(endpoint, r.ts.as_secs_f64());
        }
    }

    /// Closes the window from the accumulated deltas alone — no record
    /// slice — computing its statistics and the handshake carry for the
    /// next window, then resets (keeping map capacity).
    ///
    /// Bit-identical to [`crate::window::WindowAccumulator::close`] /
    /// [`WindowStats::compute_streaming`] over the records pushed since
    /// the last boundary.
    pub fn close(
        &mut self,
        span_secs: f64,
        window_end_secs: f64,
        grace_secs: f64,
        carry: &AckGrace,
    ) -> (WindowStats, AckGrace) {
        if self.len_log.is_empty() {
            self.clear();
            return (WindowStats::default(), carry.clone());
        }
        let n = self.len_log.len() as f64;
        let secs = if span_secs.is_finite() && span_secs > 0.0 { span_secs } else { 1.0 };

        // The delta fold: recover the port/address packet counts from
        // the flows touched this window. O(flows touched), not
        // O(records) — and exact, because the flow key partitions the
        // window's records by (dst_port, src_addr) among everything
        // else.
        for (&key, agg) in self.flows.iter() {
            *self.dst_ports.entry_or(flow_key_dst_port(key), 0) += agg.packets;
            *self.src_addrs.entry_or(flow_key_src(key), 0) += agg.packets;
        }
        self.flows_touched_total += self.flows.len() as u64;

        let unresolved_carry: u64 = carry
            .pending
            .iter()
            .filter(|(endpoint, _)| match self.first_ack_ts.get(*endpoint) {
                Some(&ts) => ts > carry.boundary_secs + grace_secs,
                None => true,
            })
            .map(|(_, &count)| count)
            .sum();

        let defer_after = window_end_secs - grace_secs;
        let mut next_carry = AckGrace { boundary_secs: window_end_secs, pending: HashMap::new() };
        let syn_without_ack: u64 = unresolved_carry
            + self
                .syns_per_source
                .iter()
                .filter(|(endpoint, _)| !self.first_ack_ts.contains_key(*endpoint))
                .map(|(endpoint, &count)| {
                    if grace_secs > 0.0
                        && self.last_syn_ts.get(endpoint).is_some_and(|&ts| ts > defer_after)
                    {
                        next_carry.pending.insert(*endpoint, count);
                        0
                    } else {
                        count
                    }
                })
                .sum::<u64>();

        let dst_port_entropy =
            entropy_sorted(&mut self.count_scratch, self.dst_ports.values().copied());
        let src_addr_entropy =
            entropy_sorted(&mut self.count_scratch, self.src_addrs.values().copied());
        let top_dst_port = self.dst_ports.values().copied().max().unwrap_or(0) as f64;
        let short_lived = self.flows.values().filter(|a| a.packets <= 2).count() as f64;
        let repeated_syn = self.syns_per_source.values().filter(|&&c| c > 1).count() as f64;

        let (mean_len, std_len) = mean_std_two_pass(self.len_log.iter().copied());
        let (_, seq_std) = mean_std_two_pass(self.seq_log.iter().copied());

        let stats = WindowStats {
            packet_count: n,
            byte_rate: self.total_bytes as f64 / secs,
            dst_port_entropy,
            src_addr_entropy,
            top_dst_port_fraction: top_dst_port / n,
            short_lived_flows: short_lived,
            repeated_syn_sources: repeated_syn,
            syn_without_ack: syn_without_ack as f64,
            flow_rate: self.flows.len() as f64 / secs,
            seq_std,
            mean_pkt_len: mean_len,
            std_pkt_len: std_len,
            udp_fraction: self.udp_count as f64 / n,
        };
        self.clear();
        (stats, next_carry)
    }

    /// Advances the handshake carry across the current window *without*
    /// computing its statistics (the `stats_refresh > 1` cached path),
    /// then resets. Produces the same carry [`FlowDelta::close`] would,
    /// matching [`AckGrace::advance`] over the pushed records.
    pub fn advance_carry(&mut self, window_end_secs: f64, grace_secs: f64) -> AckGrace {
        let mut pending: HashMap<(u32, u16), u64> = HashMap::new();
        if grace_secs > 0.0 && window_end_secs.is_finite() {
            let defer_after = window_end_secs - grace_secs;
            for (endpoint, &count) in self.syns_per_source.iter() {
                if !self.first_ack_ts.contains_key(endpoint)
                    && self.last_syn_ts.get(endpoint).is_some_and(|&ts| ts > defer_after)
                {
                    pending.insert(*endpoint, count);
                }
            }
        }
        self.clear();
        AckGrace { boundary_secs: window_end_secs, pending }
    }

    /// Ends the window: O(keys touched this window), not O(map
    /// capacity). Key sets (and map/scratch capacity) persist so that
    /// recurring flows keep their hash slots across windows.
    pub fn clear(&mut self) {
        self.flows.clear();
        self.dst_ports.clear();
        self.src_addrs.clear();
        self.syns_per_source.clear();
        self.last_syn_ts.clear();
        self.first_ack_ts.clear();
        self.total_bytes = 0;
        self.udp_count = 0;
        self.len_log.clear();
        self.seq_log.clear();
    }

    /// Forces an immediate stale-key cull on every [`GenMap`] — the
    /// `features.state_cull` buggify hook. Must be semantically
    /// invisible: live in-window state survives untouched
    /// ([`FlowDelta::state_conservation_violation`] checks it).
    pub fn force_cull(&mut self) {
        self.flows.force_cull();
        self.dst_ports.force_cull();
        self.src_addrs.force_cull();
        self.syns_per_source.force_cull();
        self.last_syn_ts.force_cull();
        self.first_ack_ts.force_cull();
    }

    /// Total flows touched across every window closed so far (feeds the
    /// `features.incremental.flows_touched` counter).
    pub fn flows_touched(&self) -> u64 {
        self.flows_touched_total
    }

    /// Flow-state conservation: the live per-flow aggregates must
    /// account for exactly the records pushed since the last boundary
    /// (packets and bytes). Valid mid-window, and in particular right
    /// after a forced cull — a cull that disturbed live state shows up
    /// here. Returns a description of the first violation, if any.
    pub fn state_conservation_violation(&self) -> Option<String> {
        let flow_packets: u64 = self.flows.values().map(|a| a.packets).sum();
        let flow_bytes: u64 = self.flows.values().map(|a| a.bytes).sum();
        let pushed = self.len_log.len() as u64;
        if flow_packets != pushed {
            return Some(format!(
                "flow packet aggregates {flow_packets} != records pushed {pushed}"
            ));
        }
        if flow_bytes != self.total_bytes {
            return Some(format!(
                "flow byte aggregates {flow_bytes} != bytes pushed {}",
                self.total_bytes
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowAccumulator;
    use capture::record::Label;
    use netsim::time::SimTime;
    use netsim::Addr;

    /// Deterministic pseudo-random record stream (xorshift, fixed seed)
    /// with mixed protocols, bare SYNs, ACKs and boundary-straddling
    /// handshakes — the same adversarial shape the oracle's own tests
    /// use.
    fn scrambled_records(n: usize, seed: u64) -> Vec<PacketRecord> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ts = 0u64;
        (0..n)
            .map(|_| {
                ts += next() % 120;
                let r = next();
                let proto = if r % 3 == 0 { Protocol::Udp } else { Protocol::Tcp };
                let flags = if proto == Protocol::Udp {
                    TcpFlags::EMPTY
                } else {
                    match r % 5 {
                        0 | 1 => TcpFlags::SYN,
                        2 => TcpFlags::ACK,
                        3 => TcpFlags::ACK | TcpFlags::PSH,
                        _ => TcpFlags::SYN | TcpFlags::ACK,
                    }
                };
                PacketRecord {
                    ts: SimTime::from_millis(ts),
                    src: Addr::new(10, 0, 0, (r % 7) as u8 + 1),
                    src_port: 1024 + (r % 13) as u16,
                    dst: Addr::new(10, 0, 0, 2),
                    dst_port: [80u16, 443, 53, 8080][(r % 4) as usize],
                    protocol: proto,
                    flags,
                    wire_len: 40 + (r % 1460) as u32,
                    payload_len: (r % 1460) as u32,
                    seq: (r >> 8) as u32,
                    label: Label::Benign,
                }
            })
            .collect()
    }

    fn windows_by_second(records: Vec<PacketRecord>) -> Vec<Vec<PacketRecord>> {
        let mut windows: Vec<Vec<PacketRecord>> = Vec::new();
        let mut current_index = u64::MAX;
        for r in records {
            let index = r.ts.as_nanos() / 1_000_000_000;
            if index != current_index {
                windows.push(Vec::new());
                current_index = index;
            }
            windows.last_mut().unwrap().push(r);
        }
        windows
    }

    /// The incremental path must be bit-identical to the batch oracle,
    /// window after window, including the handshake carry chain.
    #[test]
    fn flow_delta_matches_batch_oracle() {
        let windows = windows_by_second(scrambled_records(4_000, 0x5eed));
        assert!(windows.len() > 10, "stream must span many windows");

        let mut delta = FlowDelta::new();
        let mut oracle = WindowAccumulator::new();
        let mut delta_carry = AckGrace::default();
        let mut oracle_carry = AckGrace::default();
        for (i, window) in windows.iter().enumerate() {
            let end = (i + 1) as f64;
            for r in window {
                delta.push(r);
                oracle.push(r);
            }
            assert_eq!(delta.state_conservation_violation(), None, "window {i}");
            let (oracle_stats, oracle_next) = oracle.close(window, 1.0, end, 0.1, &oracle_carry);
            let (delta_stats, delta_next) = delta.close(1.0, end, 0.1, &delta_carry);
            assert_eq!(delta_stats, oracle_stats, "window {i} stats diverged");
            assert_eq!(delta_next, oracle_next, "window {i} carry diverged");
            delta_carry = delta_next;
            oracle_carry = oracle_next;
        }
    }

    /// The cheap carry advance (cached-stats path, handshake-only
    /// pushes) must match the records-based [`AckGrace::advance`].
    #[test]
    fn advance_carry_matches_handshake_only_downgrade() {
        let records = scrambled_records(1_500, 0xfeed);
        let mut delta = FlowDelta::new();
        for chunk in records.chunks(100) {
            let end = chunk.last().unwrap().ts.as_secs_f64() + 0.05;
            let reference = AckGrace::default().advance(chunk, end, 0.1);
            for r in chunk {
                delta.push_handshake_only(r);
            }
            let advanced = delta.advance_carry(end, 0.1);
            assert_eq!(advanced, reference);
        }
    }

    /// A forced cull at a window boundary (and mid-window) must change
    /// nothing: stale keys were already invisible.
    #[test]
    fn forced_cull_is_semantically_invisible() {
        let windows = windows_by_second(scrambled_records(3_000, 0xc011));
        let mut culled = FlowDelta::new();
        let mut plain = FlowDelta::new();
        let mut culled_carry = AckGrace::default();
        let mut plain_carry = AckGrace::default();
        for (i, window) in windows.iter().enumerate() {
            let end = (i + 1) as f64;
            if i % 3 == 0 {
                culled.force_cull(); // at the boundary
            }
            for (j, r) in window.iter().enumerate() {
                culled.push(r);
                plain.push(r);
                if i % 5 == 0 && j == window.len() / 2 {
                    culled.force_cull(); // mid-window
                    assert_eq!(culled.state_conservation_violation(), None);
                }
            }
            let (a, an) = culled.close(1.0, end, 0.1, &culled_carry);
            let (b, bn) = plain.close(1.0, end, 0.1, &plain_carry);
            assert_eq!(a, b, "window {i} stats diverged under forced culls");
            assert_eq!(an, bn, "window {i} carry diverged under forced culls");
            culled_carry = an;
            plain_carry = bn;
        }
    }

    /// Flow aggregates carry real per-flow telemetry: packets, bytes
    /// and the in-window timestamp span.
    #[test]
    fn flow_aggregates_accumulate() {
        let mut delta = FlowDelta::new();
        let base = PacketRecord {
            ts: SimTime::from_millis(100),
            src: Addr::new(10, 0, 0, 1),
            src_port: 5000,
            dst: Addr::new(10, 0, 0, 2),
            dst_port: 80,
            protocol: Protocol::Udp,
            flags: TcpFlags::EMPTY,
            wire_len: 120,
            payload_len: 80,
            seq: 0,
            label: Label::Benign,
        };
        delta.push(&base);
        delta.push(&PacketRecord { ts: SimTime::from_millis(400), wire_len: 80, ..base });
        let agg = *delta.flows.get(&base.flow_key_packed()).expect("flow tracked");
        assert_eq!(agg.packets, 2);
        assert_eq!(agg.bytes, 200);
        assert_eq!(agg.iat_span_nanos(), 300_000_000);
        assert_eq!(delta.state_conservation_violation(), None);
        let (_, _) = delta.close(1.0, 1.0, 0.1, &AckGrace::default());
        assert_eq!(delta.flows_touched(), 1);
    }

    /// `flows_touched` accumulates per closed window, counting distinct
    /// flows, not records.
    #[test]
    fn flows_touched_counts_distinct_flows_per_window() {
        let mut delta = FlowDelta::new();
        let windows = windows_by_second(scrambled_records(600, 0xabcd));
        let mut expected = 0u64;
        for (i, window) in windows.iter().enumerate() {
            let mut distinct: std::collections::HashSet<_> = Default::default();
            for r in window {
                delta.push(r);
                distinct.insert(r.flow_key());
            }
            expected += distinct.len() as u64;
            let _ = delta.close(1.0, (i + 1) as f64, 0.1, &AckGrace::default());
        }
        assert_eq!(delta.flows_touched(), expected);
    }
}
