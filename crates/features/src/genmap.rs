//! Generation-stamped maps over persistent key sets — the shared state
//! layer under both the batch [`crate::window::WindowAccumulator`]
//! oracle and the incremental [`crate::incremental::FlowDelta`] path.
//!
//! A [`GenMap`] keeps its hash slots alive across windows while making
//! stale values invisible through a `u32` generation stamp, so window
//! turnover costs O(keys touched) instead of O(map capacity) and a flow
//! that reappears window after window never re-inserts. See the type
//! docs for the cull policy and the determinism constraints on folds.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;

/// Stale-entry cull threshold for [`GenMap::clear`]: compact when the
/// backing map holds this many times more keys than the window touched
/// (plus a flat floor so small windows over a rich key history don't
/// thrash the cull).
pub const GENMAP_COMPACT_FACTOR: usize = 4;
/// Flat floor added to the cull threshold (see
/// [`GENMAP_COMPACT_FACTOR`]).
pub const GENMAP_COMPACT_MIN: usize = 256;

/// A deterministic multiply-rotate hasher for the window count maps.
///
/// The extraction path hashes millions of tiny keys per capture — `u16`
/// ports, `u32` addresses, 13-byte flow tuples — where the default
/// SipHash costs more than the table probe it guards. This is the
/// classic Fx construction (`state = (rotl5(state) ^ word) * K`): two
/// or three cycles per word, good avalanche on low bits for
/// power-of-two tables, and *unkeyed*, so hashing — like everything
/// else in the pipeline — is deterministic across runs and platforms.
/// DoS keying is irrelevant here: the keys come from the simulator, not
/// an adversary with knowledge of the process's hash seed.
///
/// Nothing order-sensitive ever folds over these maps (see
/// [`GenMap`]), so the change of iteration order vs SipHash is
/// unobservable in any output.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const FX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (word, tail) = rest.split_at(8);
            self.add(u64::from_le_bytes(word.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        let mut last = 0u64;
        for &b in rest.iter().rev() {
            last = last << 8 | u64::from(b);
        }
        if !rest.is_empty() {
            self.add(last);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        // Low word first, explicitly — the default impl round-trips
        // through native-endian bytes, which would make packed-key
        // hashes platform-dependent.
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] maps.
pub type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// A generation-stamped map: per-window values over a *persistent* key
/// set.
///
/// The hash map stores only a `(generation, slot)` stamp per key; the
/// window's values live in a dense `vals` vec aligned with the
/// `touched` key log. A lookup only sees slots stamped with the current
/// generation, and the first touch of a key in a generation appends a
/// fresh slot. Clearing a window is therefore O(touched) — bump the
/// generation, truncate the dense vecs — instead of the O(capacity)
/// sweep of `HashMap::clear`; a flow that reappears window after window
/// reuses its existing hash slot without any insertion or rehash; and
/// close-time folds iterate the *dense* value vec, never re-hashing a
/// key (this matters: under spoofed-source floods nearly every record
/// touches a distinct key, so a per-key re-hash at close would cost as
/// much as the pushes themselves). Iteration is in first-touch order,
/// so callers must only fold it with order-insensitive reductions.
///
/// Keys that stop appearing linger with a stale stamp; `clear` culls
/// them (deterministically, purely from `len`/`touched` counts) once
/// they outnumber live keys by [`GENMAP_COMPACT_FACTOR`], and
/// [`GenMap::force_cull`] drops every stale stamp immediately — the
/// hook behind the `features.state_cull` buggify point, which must be
/// semantically invisible because stale entries already are.
#[derive(Debug, Default)]
pub struct GenMap<K, V> {
    /// Per-key `(generation, index into vals)` stamp — 8 bytes, so a
    /// small-key entry spans one cache line's worth of table slot.
    map: HashMap<K, (u32, u32), FxBuild>,
    /// Keys first-touched in the current generation, in touch order.
    touched: Vec<K>,
    /// Current-generation values, aligned with `touched`.
    vals: Vec<V>,
    gen: u32,
}

impl<K: Eq + Hash + Copy, V: Copy> GenMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        GenMap { map: HashMap::default(), touched: Vec::new(), vals: Vec::new(), gen: 0 }
    }

    /// Mutable value for `key`, initialised to `init` on the first touch
    /// of the current window.
    pub fn entry_or(&mut self, key: K, init: V) -> &mut V {
        let slot = match self.map.entry(key) {
            Entry::Occupied(e) => {
                let stamp = e.into_mut();
                if stamp.0 != self.gen {
                    *stamp = (self.gen, self.touched.len() as u32);
                    self.touched.push(key);
                    self.vals.push(init);
                }
                stamp.1
            }
            Entry::Vacant(e) => {
                e.insert((self.gen, self.touched.len() as u32));
                self.touched.push(key);
                self.vals.push(init);
                self.touched.len() as u32 - 1
            }
        };
        &mut self.vals[slot as usize]
    }

    /// Overwrites `key`'s value for the current window.
    pub fn insert(&mut self, key: K, value: V) {
        *self.entry_or(key, value) = value;
    }

    /// Current-window value of `key`, if it was touched.
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.map.get(key) {
            Some((g, slot)) if *g == self.gen => Some(&self.vals[*slot as usize]),
            _ => None,
        }
    }

    /// `true` if `key` was touched in the current window.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Distinct keys touched in the current window.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// `true` if no key was touched in the current window.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Total keys in the backing table, live and stale (cull/compaction
    /// diagnostics).
    pub fn backing_len(&self) -> usize {
        self.map.len()
    }

    /// Current-window values, in first-touch order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.vals.iter()
    }

    /// Current-window entries, in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.touched.iter().zip(self.vals.iter())
    }

    /// Ends the window: O(touched), plus an occasional stale-key cull.
    pub fn clear(&mut self) {
        if self.map.len() > GENMAP_COMPACT_FACTOR * self.touched.len() + GENMAP_COMPACT_MIN {
            self.force_cull();
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // A u32 generation wrapped (2^32 windows): drop every stamp
            // rather than let ancient entries alias the fresh generation.
            self.map.clear();
            self.gen = 1;
        }
        self.touched.clear();
        self.vals.clear();
    }

    /// Drops every stale-generation stamp immediately, regardless of
    /// the [`GENMAP_COMPACT_FACTOR`] threshold. Keys touched in the
    /// current window survive with their values intact; everything
    /// older loses its slot and will re-insert on its next appearance.
    /// Semantically a no-op (stale entries are already invisible) — the
    /// `features.state_cull` buggify point calls this mid-run to prove
    /// exactly that.
    pub fn force_cull(&mut self) {
        let live = self.gen;
        self.map.retain(|_, (g, _)| *g == live);
    }

    /// Test hook: jumps the generation counter (wraparound coverage).
    #[doc(hidden)]
    pub fn set_generation_for_test(&mut self, gen: u32) {
        // Re-stamp the live window so its entries stay visible under
        // the new generation, then drop everything else.
        for (slot, key) in self.touched.iter().enumerate() {
            self.map.insert(*key, (gen, slot as u32));
        }
        let live = gen;
        self.map.retain(|_, (g, _)| *g == live);
        self.gen = gen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift stream for the property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    /// Reference model: a plain per-window HashMap, rebuilt every
    /// window. The GenMap must agree with it on every lookup and on the
    /// full entry set at every window close, across random workloads
    /// with culls, forced culls and generation jumps thrown in.
    #[test]
    fn random_ops_match_hashmap_oracle() {
        for seed in 1..=8u64 {
            let mut rng = Rng(seed | 1);
            let mut gm: GenMap<u32, u64> = GenMap::new();
            let mut oracle: HashMap<u32, u64> = HashMap::new();
            for window in 0..200 {
                let ops = rng.next() % 64;
                for _ in 0..ops {
                    let key = (rng.next() % 97) as u32;
                    match rng.next() % 3 {
                        0 => {
                            *gm.entry_or(key, 0) += 1;
                            *oracle.entry(key).or_default() += 1;
                        }
                        1 => {
                            let v = rng.next() % 1000;
                            gm.insert(key, v);
                            oracle.insert(key, v);
                        }
                        _ => {
                            assert_eq!(
                                gm.get(&key),
                                oracle.get(&key),
                                "window {window} lookup diverged for key {key}"
                            );
                        }
                    }
                }
                // Occasionally force an early cull mid-window: it must
                // be invisible to every subsequent op and fold.
                if rng.next() % 7 == 0 {
                    gm.force_cull();
                }
                let mut got: Vec<(u32, u64)> = gm.iter().map(|(k, v)| (*k, *v)).collect();
                got.sort_unstable();
                let mut want: Vec<(u32, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
                want.sort_unstable();
                assert_eq!(got, want, "window {window} entry set diverged");
                assert_eq!(gm.len(), oracle.len());
                gm.clear();
                oracle.clear();
            }
        }
    }

    /// A key culled while stale must behave exactly like a fresh key
    /// when it reappears.
    #[test]
    fn cull_then_reinsert_same_key() {
        let mut gm: GenMap<u32, u64> = GenMap::new();
        *gm.entry_or(7, 0) += 3;
        gm.clear(); // 7 is now stale
        assert_eq!(gm.get(&7), None);
        gm.force_cull(); // drops 7's stamp entirely
        assert_eq!(gm.backing_len(), 0);
        *gm.entry_or(7, 10) += 1;
        assert_eq!(gm.get(&7), Some(&11), "re-inserted key starts from init");
        assert_eq!(gm.len(), 1);
    }

    /// A forced cull mid-window keeps every live entry and drops every
    /// stale one.
    #[test]
    fn force_cull_keeps_live_entries() {
        let mut gm: GenMap<u32, u64> = GenMap::new();
        for k in 0..100u32 {
            gm.insert(k, u64::from(k));
        }
        gm.clear();
        for k in 0..10u32 {
            gm.insert(k, 1000 + u64::from(k));
        }
        assert_eq!(gm.backing_len(), 100, "stale keys linger before the cull");
        gm.force_cull();
        assert_eq!(gm.backing_len(), 10, "only live keys survive");
        for k in 0..10u32 {
            assert_eq!(gm.get(&k), Some(&(1000 + u64::from(k))));
        }
        for k in 10..100u32 {
            assert_eq!(gm.get(&k), None);
        }
    }

    /// The u32 generation wrapping to zero must not let ancient stamps
    /// alias the fresh generation.
    #[test]
    fn generation_wraparound_guard() {
        let mut gm: GenMap<u32, u64> = GenMap::new();
        gm.insert(1, 42);
        gm.set_generation_for_test(u32::MAX);
        assert_eq!(gm.get(&1), Some(&42), "live entry survives the jump");
        gm.clear(); // wraps: gen MAX -> 0 -> guarded to 1, map dropped
        assert_eq!(gm.get(&1), None, "pre-wrap entry must not alias");
        assert_eq!(gm.backing_len(), 0, "wrap guard drops every stamp");
        gm.insert(1, 7);
        assert_eq!(gm.get(&1), Some(&7));
        gm.clear();
        assert_eq!(gm.get(&1), None, "post-wrap generations keep separating");
    }

    /// The dense vecs compact at every clear while the backing table
    /// obeys the 4:1 + floor policy.
    #[test]
    fn dense_vec_compaction_policy() {
        let mut gm: GenMap<u32, u64> = GenMap::new();
        for k in 0..2000u32 {
            gm.insert(k, 1);
        }
        assert_eq!(gm.len(), 2000);
        gm.clear();
        assert_eq!(gm.len(), 0, "dense vecs truncate at clear");
        assert_eq!(gm.backing_len(), 2000, "stamps persist for slot reuse");
        // Sparse windows over the rich key history: the cull trips once
        // 2000 > 4 * touched + 256.
        for _ in 0..3 {
            for k in 0..5u32 {
                gm.insert(k, 2);
            }
            gm.clear();
        }
        assert!(
            gm.backing_len() <= GENMAP_COMPACT_FACTOR * 5 + GENMAP_COMPACT_MIN,
            "stale keys culled down to the live working set, got {}",
            gm.backing_len()
        );
        // The culled map still answers correctly.
        for k in 0..5u32 {
            gm.insert(k, 3);
            assert_eq!(gm.get(&k), Some(&3));
        }
        assert_eq!(gm.get(&1999), None);
    }
}
