//! Per-packet feature vectors and the streaming window aggregator.
//!
//! A packet's feature vector is its **basic** features (timestamp,
//! addresses, protocol, ports, lengths, flags — exactly the attribute
//! list of the paper's §IV-A) concatenated with the **statistical**
//! features of the window it belongs to
//! ([`crate::window::WindowStats`]).
//!
//! Note that the paper's basic features *include the capture timestamp
//! and raw IP addresses*, and the paper explicitly skips any
//! feature-usefulness selection ("beyond the scope of our work",
//! footnote 4, revisited in §IV-D's future work). Keeping them is part
//! of faithfully reproducing the evaluation: a model that memorises the
//! training run's attack *schedule* through the timestamp column aces
//! its training metrics and collapses on a live run whose schedule
//! differs — the very gap between the paper's train-time metrics and
//! its Table I real-time numbers.

use capture::dataset::Dataset;
use capture::record::{Label, PacketRecord};
use ml::matrix::FeatureMatrix;
use netsim::packet::{Protocol, TcpFlags};

use crate::incremental::FlowDelta;
use crate::window::{AckGrace, WindowStats, STAT_FEATURES, STAT_FEATURE_NAMES};

/// Number of basic per-packet features.
pub const BASIC_FEATURES: usize = 13;

/// Total features per packet (basic ⊕ statistical).
pub const TOTAL_FEATURES: usize = BASIC_FEATURES + STAT_FEATURES;

/// Names of the basic features, aligned with [`basic_features`].
pub const BASIC_FEATURE_NAMES: [&str; BASIC_FEATURES] = [
    "ts_secs",
    "src_addr",
    "dst_addr",
    "proto_tcp",
    "src_port",
    "dst_port",
    "wire_len",
    "payload_len",
    "flag_syn",
    "flag_ack",
    "flag_fin",
    "flag_rst",
    "flag_psh",
];

/// All feature names in vector order.
pub fn feature_names() -> Vec<&'static str> {
    BASIC_FEATURE_NAMES.iter().chain(STAT_FEATURE_NAMES.iter()).copied().collect()
}

/// The basic (per-packet) features.
pub fn basic_features(r: &PacketRecord) -> [f64; BASIC_FEATURES] {
    let flag = |f: TcpFlags| if r.flags.contains(f) { 1.0 } else { 0.0 };
    [
        r.ts.as_secs_f64(),
        r.src.to_bits() as f64,
        r.dst.to_bits() as f64,
        if r.protocol == Protocol::Tcp { 1.0 } else { 0.0 },
        r.src_port as f64,
        r.dst_port as f64,
        r.wire_len as f64,
        r.payload_len as f64,
        flag(TcpFlags::SYN),
        flag(TcpFlags::ACK),
        flag(TcpFlags::FIN),
        flag(TcpFlags::RST),
        flag(TcpFlags::PSH),
    ]
}

/// Writes one packet's full feature vector into a caller-provided
/// buffer — the allocation-free primitive behind [`feature_vector`] and
/// the matrix extractors.
///
/// # Panics
///
/// Panics if `out.len() != TOTAL_FEATURES`.
pub fn fill_feature_row(r: &PacketRecord, stats: &WindowStats, out: &mut [f64]) {
    assert_eq!(out.len(), TOTAL_FEATURES, "feature arity mismatch");
    out[..BASIC_FEATURES].copy_from_slice(&basic_features(r));
    out[BASIC_FEATURES..].copy_from_slice(&stats.as_features());
}

/// Builds one packet's full feature vector from its basic features and
/// its window's statistics.
pub fn feature_vector(r: &PacketRecord, stats: &WindowStats) -> Vec<f64> {
    let mut v = vec![0.0; TOTAL_FEATURES];
    fill_feature_row(r, stats, &mut v);
    v
}

/// A completed time window: its packets and their shared statistics.
#[derive(Debug, Clone)]
pub struct Window {
    /// The window's index (whole multiples of the window length).
    pub index: u64,
    /// Statistics shared by every packet in the window.
    pub stats: WindowStats,
    /// The packets, in time order.
    pub records: Vec<PacketRecord>,
}

impl Window {
    /// Appends every packet's feature row to a flat matrix — no per-row
    /// allocation, so a cleared scratch matrix can be reused window after
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `out` was not created with [`TOTAL_FEATURES`] columns.
    pub fn append_features(&self, out: &mut FeatureMatrix) {
        // The statistical half of the row is shared by every packet in
        // the window: fill it once and only refresh the per-packet
        // basic half inside the loop.
        let mut row = [0.0; TOTAL_FEATURES];
        row[BASIC_FEATURES..].copy_from_slice(&self.stats.as_features());
        for r in &self.records {
            row[..BASIC_FEATURES].copy_from_slice(&basic_features(r));
            out.push_row(&row);
        }
    }

    /// Ground-truth labels (0 = benign, 1 = malicious), packet-aligned.
    pub fn labels(&self) -> Vec<usize> {
        self.records.iter().map(|r| usize::from(r.label == Label::Malicious)).collect()
    }

    /// The majority ground-truth class of the window.
    pub fn majority_label(&self) -> Label {
        let malicious = self.records.iter().filter(|r| r.label == Label::Malicious).count();
        if malicious * 2 > self.records.len() {
            Label::Malicious
        } else {
            Label::Benign
        }
    }

    /// `true` if both classes are present (an attack-boundary window).
    pub fn is_mixed(&self) -> bool {
        let malicious = self.records.iter().filter(|r| r.label == Label::Malicious).count();
        malicious > 0 && malicious < self.records.len()
    }
}

/// Streaming window aggregation: push records in time order, receive
/// completed windows.
///
/// ```
/// use features::extract::WindowAggregator;
///
/// let mut agg = WindowAggregator::new(1);
/// // for r in records { if let Some(window) = agg.push(r) { ... } }
/// assert!(agg.flush().is_none());
/// ```
#[derive(Debug)]
pub struct WindowAggregator {
    window_secs: u64,
    stats_refresh: usize,
    ack_grace_secs: f64,
    ack_carry: AckGrace,
    windows_emitted: usize,
    cached_stats: Option<WindowStats>,
    current_index: Option<u64>,
    /// Absolute end of the in-progress window, in nanoseconds: the
    /// steady-state push compares timestamps against this cached
    /// boundary instead of dividing every record down to a window
    /// index (a per-record `u64` division otherwise).
    current_end_nanos: u64,
    current: Vec<PacketRecord>,
    /// Incremental per-flow state for the in-progress window: running
    /// aggregates updated per record, folded (flows touched only) at
    /// close. Its scratch maps are cleared (not dropped) at every
    /// window close. Bit-identical to the batch oracle
    /// ([`crate::window::WindowAccumulator`]).
    delta: FlowDelta,
    /// Whether the in-progress window tracks full statistics or only
    /// handshake state (its stats will come from the refresh cache).
    /// Decided when the window opens; stable until it closes.
    full_tracking: bool,
}

/// Default cross-window handshake grace, in seconds: a SYN this close
/// to a window boundary waits for its ACK in the next window before
/// being counted as unanswered.
pub const DEFAULT_ACK_GRACE_SECS: f64 = 0.1;

impl WindowAggregator {
    /// Creates an aggregator with the given window length in seconds
    /// (the paper uses 1 s; zero clamps to one).
    pub fn new(window_secs: u64) -> Self {
        WindowAggregator {
            window_secs: window_secs.max(1),
            stats_refresh: 1,
            ack_grace_secs: DEFAULT_ACK_GRACE_SECS,
            ack_carry: AckGrace::default(),
            windows_emitted: 0,
            cached_stats: None,
            current_index: None,
            current_end_nanos: 0,
            current: Vec::new(),
            delta: FlowDelta::new(),
            full_tracking: true,
        }
    }

    /// Overrides the cross-window handshake grace (seconds). `0.0`
    /// restores strict per-window `syn_without_ack` accounting, where a
    /// handshake whose ACK lands just across the boundary is (wrongly)
    /// counted as unanswered.
    pub fn with_ack_grace(mut self, grace_secs: f64) -> Self {
        self.ack_grace_secs = grace_secs.max(0.0);
        self
    }

    /// The configured cross-window handshake grace, in seconds.
    pub fn ack_grace_secs(&self) -> f64 {
        self.ack_grace_secs
    }

    /// Recomputes the statistical features only every `refresh`-th
    /// window, reusing the cached values in between — the paper's §IV-E
    /// mitigation ("extending the period for computing these features"
    /// to reduce CPU usage). `refresh = 1` (the default) recomputes
    /// every window.
    pub fn with_stats_refresh(mut self, refresh: usize) -> Self {
        self.stats_refresh = refresh.max(1);
        self
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// The configured statistical-feature refresh period, in windows.
    pub fn stats_refresh(&self) -> usize {
        self.stats_refresh
    }

    /// Pushes the next record (must be in non-decreasing time order).
    /// Returns the previous window when `record` starts a new one.
    pub fn push(&mut self, record: PacketRecord) -> Option<Window> {
        let completed = if self.current_index.is_some()
            && record.ts.as_nanos() >= self.current_end_nanos
        {
            self.take_window(false)
        } else {
            None
        };
        if self.current.is_empty() {
            // A window is opening: locate it — the only per-window
            // division; in-window records just compare against the
            // cached boundary above — and decide its tracking mode now.
            // The inputs (cache state, emitted count) cannot change
            // until it closes, so this matches the refresh decision at
            // close.
            let index = record.window_index(self.window_secs);
            self.current_index = Some(index);
            self.current_end_nanos = (index + 1)
                .saturating_mul(self.window_secs.saturating_mul(1_000_000_000));
            self.full_tracking = self.cached_stats.is_none()
                || self.windows_emitted.is_multiple_of(self.stats_refresh);
        }
        if self.full_tracking {
            self.delta.push(&record);
        } else {
            self.delta.push_handshake_only(&record);
        }
        self.current.push(record);
        completed
    }

    /// Completes and returns the in-progress window, if any. The final
    /// window is usually *partial*: its rate features are computed over
    /// the span it actually covers, not the nominal window length, and
    /// handshake deferral is disabled (there is no next window for an
    /// ACK to land in).
    pub fn flush(&mut self) -> Option<Window> {
        self.take_window(true)
    }

    fn take_window(&mut self, is_flush: bool) -> Option<Window> {
        let index = self.current_index?;
        if self.current.is_empty() {
            return None;
        }
        let records = std::mem::take(&mut self.current);
        // Pre-size the next window like this one: the replacement Vec
        // otherwise regrows from empty every window, re-copying the
        // records log at each doubling.
        self.current = Vec::with_capacity(records.len());
        self.current_index = None;
        let nominal = self.window_secs as f64;
        let window_start = (index * self.window_secs) as f64;
        let (span, window_end) = if is_flush {
            let last_ts = records.last().expect("non-empty window").ts.as_secs_f64();
            // The actual covered span, never beyond the nominal window
            // and floored so rates stay finite for a single packet.
            ((last_ts - window_start).clamp(1e-3, nominal), f64::INFINITY)
        } else {
            (nominal, window_start + nominal)
        };
        // The same predicate that selected the window's tracking mode
        // when it opened, so a fully tracked window always closes with
        // full statistics and a handshake-only window never needs them.
        let refresh_due = self.full_tracking;
        let stats = if refresh_due {
            // No record slice: everything order-sensitive was logged at
            // push time, so close cost is O(flows touched), not
            // O(records) re-walked.
            let (stats, carry) =
                self.delta.close(span, window_end, self.ack_grace_secs, &self.ack_carry);
            self.ack_carry = carry;
            self.cached_stats = Some(stats);
            stats
        } else {
            // Cached stats are reused, but the handshake carry must
            // still track this window or the next fresh computation
            // would resolve SYNs against a stale boundary.
            self.ack_carry = self.delta.advance_carry(window_end, self.ack_grace_secs);
            self.cached_stats.expect("cache checked above")
        };
        self.windows_emitted += 1;
        Some(Window { index, stats, records })
    }

    /// Forces an immediate stale-key cull on the incremental state's
    /// scratch maps — the `features.state_cull` fault-injection hook.
    /// Semantically invisible: culling only evicts entries no live
    /// window can see.
    pub fn force_cull(&mut self) {
        self.delta.force_cull();
    }

    /// Total distinct flows folded across all closed windows (the
    /// `features.incremental.flows_touched` observability feed).
    pub fn flows_touched(&self) -> u64 {
        self.delta.flows_touched()
    }

    /// Checks flow-state conservation on the in-progress window: the
    /// live per-flow aggregates must account for exactly the records
    /// pushed since the last boundary. Returns the first violation
    /// found, if any.
    pub fn state_conservation_violation(&self) -> Option<String> {
        if self.full_tracking {
            self.delta.state_conservation_violation()
        } else {
            // Handshake-only windows deliberately skip the flow
            // aggregates; there is nothing to conserve.
            None
        }
    }
}

/// Splits a whole dataset into completed windows.
pub fn windows_of(dataset: &Dataset, window_secs: u64) -> Vec<Window> {
    let mut agg = WindowAggregator::new(window_secs);
    let mut out = Vec::new();
    for &r in dataset.records() {
        if let Some(w) = agg.push(r) {
            out.push(w);
        }
    }
    if let Some(w) = agg.flush() {
        out.push(w);
    }
    out
}

/// Extracts the full per-packet feature matrix and labels of a dataset —
/// the model-training input, as nested rows for callers that need owned
/// `Vec<f64>` vectors. Routed through [`extract_matrix`]'s flat row-fill;
/// prefer that directly in hot paths.
pub fn extract_dataset(dataset: &Dataset, window_secs: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let (matrix, labels) = extract_matrix(dataset, window_secs);
    (matrix.rows().map(<[f64]>::to_vec).collect(), labels)
}

/// Extracts the dataset's features straight into one flat row-major
/// matrix (row values identical to [`extract_dataset`], without the
/// per-packet `Vec` allocations).
pub fn extract_matrix(dataset: &Dataset, window_secs: u64) -> (FeatureMatrix, Vec<usize>) {
    let mut features = FeatureMatrix::with_capacity(dataset.len(), TOTAL_FEATURES);
    let mut labels = Vec::with_capacity(dataset.len());
    for window in windows_of(dataset, window_secs) {
        window.append_features(&mut features);
        labels.extend(window.labels());
    }
    (features, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;
    use netsim::Addr;

    fn record(ts_ms: u64, label: Label) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            src: Addr::new(10, 0, 0, 1),
            src_port: 5000,
            dst: Addr::new(10, 0, 0, 2),
            dst_port: 80,
            protocol: Protocol::Tcp,
            flags: TcpFlags::ACK,
            wire_len: 100,
            payload_len: 60,
            seq: 1,
            label,
        }
    }

    #[test]
    fn vectors_have_declared_arity() {
        let r = record(0, Label::Benign);
        let stats = WindowStats::default();
        let v = feature_vector(&r, &stats);
        assert_eq!(v.len(), TOTAL_FEATURES);
        assert_eq!(feature_names().len(), TOTAL_FEATURES);
    }

    #[test]
    fn aggregator_partitions_by_second() {
        let mut agg = WindowAggregator::new(1);
        assert!(agg.push(record(100, Label::Benign)).is_none());
        assert!(agg.push(record(900, Label::Benign)).is_none());
        let w = agg.push(record(1_100, Label::Malicious)).expect("first window closes");
        assert_eq!(w.index, 0);
        assert_eq!(w.records.len(), 2);
        let w = agg.flush().expect("final window flushes");
        assert_eq!(w.index, 1);
        assert_eq!(w.records.len(), 1);
        assert!(agg.flush().is_none());
    }

    #[test]
    fn aggregator_handles_gaps() {
        let mut agg = WindowAggregator::new(1);
        agg.push(record(0, Label::Benign));
        let w = agg.push(record(10_000, Label::Benign)).expect("gap closes window");
        assert_eq!(w.index, 0);
        let w = agg.flush().unwrap();
        assert_eq!(w.index, 10);
    }

    #[test]
    fn windows_partition_the_dataset() {
        let records: Vec<PacketRecord> = (0..500)
            .map(|i| record(i * 17, if i % 3 == 0 { Label::Malicious } else { Label::Benign }))
            .collect();
        let ds = Dataset::from_records(records);
        let windows = windows_of(&ds, 1);
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, 500, "no packet lost or duplicated");
        // Indices strictly increase.
        for pair in windows.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
    }

    #[test]
    fn stats_are_shared_within_a_window() {
        let records = vec![record(0, Label::Benign), record(10, Label::Malicious)];
        let ds = Dataset::from_records(records);
        let (features, labels) = extract_dataset(&ds, 1);
        assert_eq!(features.len(), 2);
        assert_eq!(labels, vec![0, 1]);
        // The statistical tail of both vectors is identical — the paper's
        // central design decision (and source of boundary noise).
        assert_eq!(features[0][BASIC_FEATURES..], features[1][BASIC_FEATURES..]);
    }

    #[test]
    fn matrix_extraction_matches_row_extraction() {
        let records: Vec<PacketRecord> = (0..200)
            .map(|i| record(i * 23, if i % 4 == 0 { Label::Malicious } else { Label::Benign }))
            .collect();
        let ds = Dataset::from_records(records);
        // Independent reference: per-window feature vectors built one
        // packet at a time, bypassing the flat-matrix row fill.
        let mut expected_rows: Vec<Vec<f64>> = Vec::new();
        let mut expected_labels: Vec<usize> = Vec::new();
        for window in windows_of(&ds, 1) {
            expected_rows.extend(window.records.iter().map(|r| feature_vector(r, &window.stats)));
            expected_labels.extend(window.labels());
        }
        let (rows, row_labels) = extract_dataset(&ds, 1);
        let (flat, flat_labels) = extract_matrix(&ds, 1);
        assert_eq!(row_labels, expected_labels);
        assert_eq!(flat_labels, expected_labels);
        assert_eq!(rows, expected_rows);
        assert_eq!(flat.n_rows(), expected_rows.len());
        assert_eq!(flat.n_cols(), TOTAL_FEATURES);
        for (a, b) in expected_rows.iter().zip(flat.rows()) {
            assert_eq!(a.as_slice(), b, "rows must be bit-identical");
        }
    }

    #[test]
    fn flushed_partial_window_uses_actual_span() {
        // 250 ms of traffic inside window 3 (3.0 s – 3.25 s), then flush.
        let mut agg = WindowAggregator::new(1);
        for i in 0..5u64 {
            agg.push(record(3_000 + i * 62, Label::Benign));
        }
        let w = agg.flush().expect("partial window flushes");
        assert_eq!(w.index, 3);
        let span = 0.248; // last ts 3.248 s − window start 3.0 s
        let expected_rate = 5.0 * 100.0 / span;
        assert!(
            (w.stats.byte_rate - expected_rate).abs() < 1e-6,
            "rate over actual span, got {} expected {expected_rate}",
            w.stats.byte_rate
        );
        // The nominal-length division would claim a 4× lower rate.
        assert!(w.stats.byte_rate > 3.9 * 500.0);
    }

    #[test]
    fn single_packet_flush_keeps_rates_finite() {
        let mut agg = WindowAggregator::new(1);
        agg.push(record(2_000, Label::Benign));
        let w = agg.flush().unwrap();
        assert!(w.stats.byte_rate.is_finite());
        assert!(w.stats.flow_rate.is_finite());
        // Clamped at the 1 ms span floor: 100 bytes / 1e-3 s.
        assert!((w.stats.byte_rate - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn aggregator_carries_handshake_grace_across_windows() {
        // The handshaking endpoint is 10.0.0.1:6000; the window filler
        // comes from an unrelated endpoint so it cannot answer the SYN.
        let syn = |ts_ms: u64| PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            src_port: 6000,
            flags: TcpFlags::SYN,
            ..record(0, Label::Benign)
        };
        let ack = |ts_ms: u64| PacketRecord { src_port: 6000, ..record(ts_ms, Label::Benign) };
        let filler = |ts_ms: u64| PacketRecord { src_port: 7777, ..record(ts_ms, Label::Benign) };

        let mut agg = WindowAggregator::new(1);
        agg.push(filler(100));
        agg.push(syn(950));
        // The ACK lands 20 ms into the next window.
        let w0 = agg.push(ack(1_020)).expect("window 0 closes");
        assert_eq!(w0.stats.syn_without_ack, 0.0, "boundary handshake not miscounted");
        let w1 = agg.flush().unwrap();
        assert_eq!(w1.stats.syn_without_ack, 0.0, "resolved by the grace carry");

        // Strict mode (grace off) reproduces the old misattribution.
        let mut strict = WindowAggregator::new(1).with_ack_grace(0.0);
        strict.push(filler(100));
        strict.push(syn(950));
        let w0 = strict.push(ack(1_020)).expect("window 0 closes");
        assert_eq!(w0.stats.syn_without_ack, 1.0);
    }

    #[test]
    fn mixed_and_majority_labels() {
        let w = Window {
            index: 0,
            stats: WindowStats::default(),
            records: vec![
                record(0, Label::Malicious),
                record(1, Label::Malicious),
                record(2, Label::Benign),
            ],
        };
        assert!(w.is_mixed());
        assert_eq!(w.majority_label(), Label::Malicious);
    }
}
