//! # features — basic + statistical feature extraction
//!
//! Implements the paper's two-stage feature pipeline (§III-B, §IV-A):
//! per-packet **basic** features (protocol, ports, lengths, TCP flags)
//! concatenated with per-window **statistical** features (packet counts,
//! destination-port entropy, port-frequency concentration, short-lived
//! connections, repeated connection attempts, SYN-without-ACK counts,
//! flow rates, sequence-number variance). Statistical features are
//! shared by every packet in a window — deliberately reproduced, because
//! the paper attributes its boundary-second accuracy dips to exactly
//! this property.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod extract;
pub mod genmap;
pub mod incremental;
pub mod scaling;
pub mod window;

pub use extract::{
    basic_features, extract_dataset, feature_names, feature_vector, windows_of, Window,
    WindowAggregator, BASIC_FEATURES, TOTAL_FEATURES,
};
pub use genmap::GenMap;
pub use incremental::{FlowAgg, FlowDelta};
pub use scaling::{Scaler, ScalingMethod};
pub use window::{entropy, mean_std, AckGrace, WindowStats, STAT_FEATURES};
