//! Time-window statistics — the paper's "statistical features".
//!
//! Per §III-B and §IV-A, the IDS aggregates packets over a user-chosen
//! time window (1 s in the paper's experiments) and computes statistical
//! features that are **identical for every packet in the window**:
//! packet counts, destination-port entropy, port-frequency concentration,
//! short-lived-connection and repeated-connection-attempt counts,
//! SYN-without-ACK counts, flow rates and sequence-number variance. Each
//! packet's final feature vector is its basic features concatenated with
//! the window's statistics. The shared statistics are exactly what causes
//! the accuracy dips at attack boundaries the paper reports (mixed
//! windows give both classes the same statistical half).

use std::collections::HashMap;

use capture::record::PacketRecord;
use netsim::packet::{Protocol, TcpFlags};
use serde::{Deserialize, Serialize};

use crate::genmap::GenMap;

/// The statistical features of one time window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Packets in the window.
    pub packet_count: f64,
    /// Bytes per second over the window.
    pub byte_rate: f64,
    /// Shannon entropy (bits) of destination ports.
    pub dst_port_entropy: f64,
    /// Shannon entropy (bits) of source addresses.
    pub src_addr_entropy: f64,
    /// Fraction of packets aimed at the most common destination port.
    pub top_dst_port_fraction: f64,
    /// Flows seen with at most two packets (short-lived connections).
    pub short_lived_flows: f64,
    /// Sources that sent more than one bare SYN (repeated attempts).
    pub repeated_syn_sources: f64,
    /// Bare SYNs never followed by an ACK from the same endpoint.
    pub syn_without_ack: f64,
    /// Distinct flows per second.
    pub flow_rate: f64,
    /// Standard deviation of TCP sequence numbers.
    pub seq_std: f64,
    /// Mean wire length.
    pub mean_pkt_len: f64,
    /// Standard deviation of wire lengths.
    pub std_pkt_len: f64,
    /// Fraction of UDP packets.
    pub udp_fraction: f64,
}

/// Number of statistical features.
pub const STAT_FEATURES: usize = 13;

/// Handshake state carried between adjacent windows so that a SYN
/// answered by an ACK *just across* the window boundary is not counted
/// as unanswered (see [`WindowStats::compute_streaming`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AckGrace {
    /// The window boundary (in seconds) at which these SYNs were
    /// deferred; an ACK within the grace period of this instant
    /// resolves them.
    pub(crate) boundary_secs: f64,
    /// Per-endpoint `(src_addr, src_port)` count of bare SYNs still
    /// awaiting an ACK across the boundary.
    pub(crate) pending: HashMap<(u32, u16), u64>,
}

impl AckGrace {
    /// `true` if no handshakes straddle the boundary.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total SYNs awaiting cross-boundary resolution.
    pub fn pending_syns(&self) -> u64 {
        self.pending.values().sum()
    }

    /// Advances the carry across a window *without* recomputing its
    /// statistics — the cheap companion of
    /// [`WindowStats::compute_streaming`] for aggregators that reuse
    /// cached stats (`stats_refresh > 1`). Produces the same carry the
    /// full computation would, so the next freshly computed window sees
    /// identical handshake state.
    pub fn advance(
        &self,
        records: &[PacketRecord],
        window_end_secs: f64,
        grace_secs: f64,
    ) -> AckGrace {
        let mut pending: HashMap<(u32, u16), u64> = HashMap::new();
        if grace_secs > 0.0 && window_end_secs.is_finite() {
            let mut syns: HashMap<(u32, u16), (u64, f64)> = HashMap::new();
            let mut acked: std::collections::HashSet<(u32, u16)> = std::collections::HashSet::new();
            for r in records {
                if r.protocol != Protocol::Tcp {
                    continue;
                }
                let endpoint = (r.src.to_bits(), r.src_port);
                if r.is_bare_syn() {
                    let entry = syns.entry(endpoint).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 = r.ts.as_secs_f64();
                } else if r.flags.contains(TcpFlags::ACK) {
                    acked.insert(endpoint);
                }
            }
            let defer_after = window_end_secs - grace_secs;
            for (endpoint, (count, last_ts)) in syns {
                if !acked.contains(&endpoint) && last_ts > defer_after {
                    pending.insert(endpoint, count);
                }
            }
        }
        AckGrace { boundary_secs: window_end_secs, pending }
    }
}

impl WindowStats {
    /// Computes the statistics of a window's packets.
    ///
    /// `window_secs` is the window span used for the rate features —
    /// pass the *actual* covered span for a partial (flushed) final
    /// window, not the nominal length, or its rates read artificially
    /// low. A non-finite or non-positive span falls back to a nominal
    /// 1 s denominator. Returns the default (all zeros) for an empty
    /// window.
    pub fn compute(records: &[PacketRecord], window_secs: f64) -> Self {
        Self::compute_streaming(records, window_secs, f64::INFINITY, 0.0, &AckGrace::default()).0
    }

    /// Streaming form of [`WindowStats::compute`] with cross-window
    /// handshake grace.
    ///
    /// A bare SYN within `grace_secs` of the window end (`window_end_secs`,
    /// absolute) is *deferred* into the returned [`AckGrace`] instead of
    /// being counted: if the endpoint's ACK lands within `grace_secs`
    /// after the boundary, the handshake was answered and is never
    /// counted; otherwise the deferred SYN is added to the *next*
    /// window's `syn_without_ack`. Totals over a run are preserved —
    /// only the boundary misattribution is fixed. `grace_secs = 0.0`
    /// reproduces the plain per-window accounting exactly, and an
    /// infinite `window_end_secs` disables deferral (used for the final
    /// flushed window, which has no successor).
    pub fn compute_streaming(
        records: &[PacketRecord],
        span_secs: f64,
        window_end_secs: f64,
        grace_secs: f64,
        carry: &AckGrace,
    ) -> (Self, AckGrace) {
        if records.is_empty() {
            return (WindowStats::default(), carry.clone());
        }
        let n = records.len() as f64;
        // Guard the rate denominator: a zero, negative, infinite or NaN
        // span (a single-timestamp flush, or an uninitialised caller)
        // must not explode byte_rate/flow_rate by 1e9 or silently zero
        // them. Fall back to the nominal 1 s window so rates degrade to
        // per-window totals.
        let secs = if span_secs.is_finite() && span_secs > 0.0 { span_secs } else { 1.0 };

        let total_bytes: u64 = records.iter().map(|r| r.wire_len as u64).sum();

        let mut dst_ports: HashMap<u16, u64> = HashMap::new();
        let mut src_addrs: HashMap<u32, u64> = HashMap::new();
        let mut flows: HashMap<(u32, u16, u32, u16, u8), u64> = HashMap::new();
        let mut syns_per_source: HashMap<(u32, u16), u64> = HashMap::new();
        let mut last_syn_ts: HashMap<(u32, u16), f64> = HashMap::new();
        let mut first_ack_ts: HashMap<(u32, u16), f64> = HashMap::new();
        let mut seq_values: Vec<f64> = Vec::new();
        let mut udp_count = 0u64;

        for r in records {
            *dst_ports.entry(r.dst_port).or_default() += 1;
            *src_addrs.entry(r.src.to_bits()).or_default() += 1;
            *flows
                .entry((r.src.to_bits(), r.src_port, r.dst.to_bits(), r.dst_port, r.protocol.number()))
                .or_default() += 1;
            match r.protocol {
                Protocol::Udp => udp_count += 1,
                Protocol::Tcp => {
                    seq_values.push(r.seq as f64);
                    let endpoint = (r.src.to_bits(), r.src_port);
                    if r.is_bare_syn() {
                        *syns_per_source.entry(endpoint).or_default() += 1;
                        last_syn_ts.insert(endpoint, r.ts.as_secs_f64());
                    } else if r.flags.contains(TcpFlags::ACK) {
                        first_ack_ts.entry(endpoint).or_insert_with(|| r.ts.as_secs_f64());
                    }
                }
            }
        }

        // SYNs deferred at the previous boundary: answered if the
        // endpoint ACKed within the grace period of that boundary,
        // otherwise they count against this window.
        let unresolved_carry: u64 = carry
            .pending
            .iter()
            .filter(|(endpoint, _)| match first_ack_ts.get(*endpoint) {
                Some(&ts) => ts > carry.boundary_secs + grace_secs,
                None => true,
            })
            .map(|(_, &count)| count)
            .sum();

        // SYNs near this window's end with no ACK yet: defer rather
        // than count — their ACK may land just across the boundary.
        let defer_after = window_end_secs - grace_secs;
        let mut next_carry = AckGrace { boundary_secs: window_end_secs, pending: HashMap::new() };
        let syn_without_ack: u64 = unresolved_carry
            + syns_per_source
                .iter()
                .filter(|(endpoint, _)| !first_ack_ts.contains_key(*endpoint))
                .map(|(endpoint, &count)| {
                    if grace_secs > 0.0
                        && last_syn_ts.get(endpoint).is_some_and(|&ts| ts > defer_after)
                    {
                        next_carry.pending.insert(*endpoint, count);
                        0
                    } else {
                        count
                    }
                })
                .sum::<u64>();

        let dst_port_entropy = entropy(dst_ports.values().copied());
        let src_addr_entropy = entropy(src_addrs.values().copied());
        let top_dst_port = dst_ports.values().copied().max().unwrap_or(0) as f64;
        let short_lived = flows.values().filter(|&&c| c <= 2).count() as f64;
        let repeated_syn = syns_per_source.values().filter(|&&c| c > 1).count() as f64;

        let (mean_len, std_len) = mean_std(records.iter().map(|r| r.wire_len as f64));
        let (_, seq_std) = mean_std(seq_values.iter().copied());

        let stats = WindowStats {
            packet_count: n,
            byte_rate: total_bytes as f64 / secs,
            dst_port_entropy,
            src_addr_entropy,
            top_dst_port_fraction: top_dst_port / n,
            short_lived_flows: short_lived,
            repeated_syn_sources: repeated_syn,
            syn_without_ack: syn_without_ack as f64,
            flow_rate: flows.len() as f64 / secs,
            seq_std,
            mean_pkt_len: mean_len,
            std_pkt_len: std_len,
            udp_fraction: udp_count as f64 / n,
        };
        (stats, next_carry)
    }

    /// The statistics as a feature slice, in [`STAT_FEATURE_NAMES`] order.
    pub fn as_features(&self) -> [f64; STAT_FEATURES] {
        [
            self.packet_count,
            self.byte_rate,
            self.dst_port_entropy,
            self.src_addr_entropy,
            self.top_dst_port_fraction,
            self.short_lived_flows,
            self.repeated_syn_sources,
            self.syn_without_ack,
            self.flow_rate,
            self.seq_std,
            self.mean_pkt_len,
            self.std_pkt_len,
            self.udp_fraction,
        ]
    }
}

/// Streaming per-record accumulator — the batch **oracle** for the
/// incremental path.
///
/// [`WindowStats::compute_streaming`] rebuilds every count map from
/// scratch each window — O(packets) hash inserts *and* O(windows) map
/// allocations. The accumulator instead absorbs each record as it
/// arrives ([`WindowAccumulator::push`]) into generation-stamped
/// [`GenMap`]s whose key sets **persist across windows**: a flow, port
/// or endpoint seen before reuses its hash slot, window turnover is
/// O(keys touched) rather than O(map capacity), and steady-state
/// windows allocate nothing once the maps have grown to the traffic's
/// working set. [`WindowAccumulator::close`] only walks the touched
/// keys (plus the two-pass mean/std sweeps over the record slice, which
/// are unavoidable for bit-identical results — see DESIGN.md §10).
///
/// `close` reproduces the exact float-operation order of
/// `compute_streaming`: entropy counts are sorted before summation,
/// mean/std run two passes in record order, and all integer tallies are
/// exact (every reduction over a map is order-insensitive, so the
/// touch-order iteration cannot leak in). Same input stream →
/// bit-identical [`WindowStats`], which the
/// `accumulator_matches_batch_computation` test and the repo-level
/// identity test both pin.
///
/// The production aggregator now runs on
/// [`crate::incremental::FlowDelta`], which folds per-flow running
/// aggregates instead of three per-record count maps; this accumulator
/// is kept as the slower, record-slice-driven **oracle** the identity
/// tests compare it against.
#[derive(Debug, Default)]
pub struct WindowAccumulator {
    dst_ports: GenMap<u16, u64>,
    src_addrs: GenMap<u32, u64>,
    flows: GenMap<(u32, u16, u32, u16, u8), u64>,
    syns_per_source: GenMap<(u32, u16), u64>,
    last_syn_ts: GenMap<(u32, u16), f64>,
    first_ack_ts: GenMap<(u32, u16), f64>,
    total_bytes: u64,
    udp_count: u64,
    /// Reusable scratch for entropy's sorted-count summation.
    count_scratch: Vec<u64>,
}

impl WindowAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one record of the current window.
    pub fn push(&mut self, r: &PacketRecord) {
        self.total_bytes += r.wire_len as u64;
        *self.dst_ports.entry_or(r.dst_port, 0) += 1;
        *self.src_addrs.entry_or(r.src.to_bits(), 0) += 1;
        *self.flows.entry_or(r.flow_key(), 0) += 1;
        match r.protocol {
            Protocol::Udp => self.udp_count += 1,
            Protocol::Tcp => self.track_handshake(r),
        }
    }

    /// Absorbs one record tracking *only* the SYN/ACK handshake state —
    /// all that [`WindowAccumulator::advance_carry`] needs. Used for
    /// windows whose statistics will be served from cache
    /// (`stats_refresh > 1`), so the §IV-E mitigation's CPU saving is
    /// preserved: cached windows skip the port/address/flow map updates
    /// entirely. Not valid before [`WindowAccumulator::close`].
    pub fn push_handshake_only(&mut self, r: &PacketRecord) {
        if r.protocol == Protocol::Tcp {
            self.track_handshake(r);
        }
    }

    fn track_handshake(&mut self, r: &PacketRecord) {
        let endpoint = (r.src.to_bits(), r.src_port);
        if r.is_bare_syn() {
            *self.syns_per_source.entry_or(endpoint, 0) += 1;
            self.last_syn_ts.insert(endpoint, r.ts.as_secs_f64());
        } else if r.flags.contains(TcpFlags::ACK) {
            // First touch wins: `entry_or` only writes the timestamp the
            // first time this window sees the endpoint ACK.
            self.first_ack_ts.entry_or(endpoint, r.ts.as_secs_f64());
        }
    }

    /// Closes the window: computes its statistics and the handshake
    /// carry for the next window, then resets for the next window
    /// (keeping map capacity). `records` must be exactly the records
    /// pushed since the last close, in push order — the mean/std
    /// features are order-sensitive two-pass sweeps over them.
    ///
    /// Bit-identical to
    /// [`WindowStats::compute_streaming`]`(records, ...)` on the same
    /// inputs.
    pub fn close(
        &mut self,
        records: &[PacketRecord],
        span_secs: f64,
        window_end_secs: f64,
        grace_secs: f64,
        carry: &AckGrace,
    ) -> (WindowStats, AckGrace) {
        if records.is_empty() {
            self.clear();
            return (WindowStats::default(), carry.clone());
        }
        let n = records.len() as f64;
        let secs = if span_secs.is_finite() && span_secs > 0.0 { span_secs } else { 1.0 };

        let unresolved_carry: u64 = carry
            .pending
            .iter()
            .filter(|(endpoint, _)| match self.first_ack_ts.get(*endpoint) {
                Some(&ts) => ts > carry.boundary_secs + grace_secs,
                None => true,
            })
            .map(|(_, &count)| count)
            .sum();

        let defer_after = window_end_secs - grace_secs;
        let mut next_carry = AckGrace { boundary_secs: window_end_secs, pending: HashMap::new() };
        let syn_without_ack: u64 = unresolved_carry
            + self
                .syns_per_source
                .iter()
                .filter(|(endpoint, _)| !self.first_ack_ts.contains_key(*endpoint))
                .map(|(endpoint, &count)| {
                    if grace_secs > 0.0
                        && self.last_syn_ts.get(endpoint).is_some_and(|&ts| ts > defer_after)
                    {
                        next_carry.pending.insert(*endpoint, count);
                        0
                    } else {
                        count
                    }
                })
                .sum::<u64>();

        let dst_port_entropy =
            entropy_sorted(&mut self.count_scratch, self.dst_ports.values().copied());
        let src_addr_entropy =
            entropy_sorted(&mut self.count_scratch, self.src_addrs.values().copied());
        let top_dst_port = self.dst_ports.values().copied().max().unwrap_or(0) as f64;
        let short_lived = self.flows.values().filter(|&&c| c <= 2).count() as f64;
        let repeated_syn = self.syns_per_source.values().filter(|&&c| c > 1).count() as f64;

        let (mean_len, std_len) = mean_std_two_pass(records.iter().map(|r| r.wire_len as f64));
        let (_, seq_std) = mean_std_two_pass(
            records.iter().filter(|r| r.protocol == Protocol::Tcp).map(|r| r.seq as f64),
        );

        let stats = WindowStats {
            packet_count: n,
            byte_rate: self.total_bytes as f64 / secs,
            dst_port_entropy,
            src_addr_entropy,
            top_dst_port_fraction: top_dst_port / n,
            short_lived_flows: short_lived,
            repeated_syn_sources: repeated_syn,
            syn_without_ack: syn_without_ack as f64,
            flow_rate: self.flows.len() as f64 / secs,
            seq_std,
            mean_pkt_len: mean_len,
            std_pkt_len: std_len,
            udp_fraction: self.udp_count as f64 / n,
        };
        self.clear();
        (stats, next_carry)
    }

    /// Advances the handshake carry across the current window *without*
    /// computing its statistics (the `stats_refresh > 1` cached path),
    /// then resets. Produces the same carry [`WindowAccumulator::close`]
    /// would, matching [`AckGrace::advance`] over the pushed records.
    pub fn advance_carry(&mut self, window_end_secs: f64, grace_secs: f64) -> AckGrace {
        let mut pending: HashMap<(u32, u16), u64> = HashMap::new();
        if grace_secs > 0.0 && window_end_secs.is_finite() {
            let defer_after = window_end_secs - grace_secs;
            for (endpoint, &count) in self.syns_per_source.iter() {
                if !self.first_ack_ts.contains_key(endpoint)
                    && self.last_syn_ts.get(endpoint).is_some_and(|&ts| ts > defer_after)
                {
                    pending.insert(*endpoint, count);
                }
            }
        }
        self.clear();
        AckGrace { boundary_secs: window_end_secs, pending }
    }

    /// Ends the window: O(keys touched this window), not O(map
    /// capacity). Key sets (and map/scratch capacity) persist so that
    /// recurring flows keep their hash slots across windows.
    pub fn clear(&mut self) {
        self.dst_ports.clear();
        self.src_addrs.clear();
        self.flows.clear();
        self.syns_per_source.clear();
        self.last_syn_ts.clear();
        self.first_ack_ts.clear();
        self.total_bytes = 0;
        self.udp_count = 0;
    }
}

/// [`entropy`] with a caller-owned scratch vector instead of a fresh
/// allocation — identical float-operation order (counts sorted before
/// the probability summation), identical result.
pub(crate) fn entropy_sorted(scratch: &mut Vec<u64>, counts: impl IntoIterator<Item = u64>) -> f64 {
    scratch.clear();
    scratch.extend(counts.into_iter().filter(|&c| c > 0));
    scratch.sort_unstable();
    let total: u64 = scratch.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -scratch
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// [`mean_std`] without collecting into a vector: two passes over a
/// cloneable iterator, adding terms in the same order as the collected
/// form, so the result is bit-identical.
pub(crate) fn mean_std_two_pass(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let mut n = 0u64;
    let mut sum = 0.0f64;
    for v in values.clone() {
        n += 1;
        sum += v;
    }
    if n == 0 {
        return (0.0, 0.0);
    }
    let n = n as f64;
    let mean = sum / n;
    let var = values.map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Names of the statistical features, aligned with
/// [`WindowStats::as_features`].
pub const STAT_FEATURE_NAMES: [&str; STAT_FEATURES] = [
    "packet_count",
    "byte_rate",
    "dst_port_entropy",
    "src_addr_entropy",
    "top_dst_port_fraction",
    "short_lived_flows",
    "repeated_syn_sources",
    "syn_without_ack",
    "flow_rate",
    "seq_std",
    "mean_pkt_len",
    "std_pkt_len",
    "udp_fraction",
];

/// Shannon entropy in bits of a count distribution.
///
/// The counts are sorted before summation so the result is independent
/// of iteration order (hash maps iterate in arbitrary order, and float
/// addition is not associative — without sorting, bit-for-bit run
/// reproducibility would silently break).
pub fn entropy(counts: impl IntoIterator<Item = u64>) -> f64 {
    let mut counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    counts.sort_unstable();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Mean and **population** standard deviation (divides the variance by
/// `n`, not the Bessel-corrected `n - 1`; a single observation yields
/// deviation 0). Window features describe the complete set of packets in
/// the window — a population, not a sample drawn from one.
pub fn mean_std(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let values: Vec<f64> = values.collect();
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use capture::record::Label;
    use netsim::time::SimTime;
    use netsim::Addr;

    fn record(src_host: u8, src_port: u16, dst_port: u16, flags: TcpFlags, seq: u32) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(100),
            src: Addr::new(10, 0, 0, src_host),
            src_port,
            dst: Addr::new(10, 0, 0, 2),
            dst_port,
            protocol: Protocol::Tcp,
            flags,
            wire_len: 40,
            payload_len: 0,
            seq,
            label: Label::Benign,
        }
    }

    fn udp_record(src_host: u8, dst_port: u16) -> PacketRecord {
        PacketRecord {
            protocol: Protocol::Udp,
            flags: TcpFlags::EMPTY,
            wire_len: 540,
            ..record(src_host, 1000, dst_port, TcpFlags::EMPTY, 0)
        }
    }

    #[test]
    fn empty_window_is_all_zero() {
        let stats = WindowStats::compute(&[], 1.0);
        assert_eq!(stats, WindowStats::default());
        assert_eq!(stats.as_features(), [0.0; STAT_FEATURES]);
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy([]), 0.0);
        assert_eq!(entropy([10]), 0.0);
        // Uniform over 4 symbols = 2 bits.
        assert!((entropy([5, 5, 5, 5]) - 2.0).abs() < 1e-12);
        // Any distribution over n symbols has entropy <= log2(n).
        assert!(entropy([1, 2, 3, 4]) <= 2.0);
    }

    #[test]
    fn syn_flood_window_signature() {
        // 50 bare SYNs from distinct sources and ports, never ACKed.
        let records: Vec<PacketRecord> = (0..50)
            .map(|i| record(3, 2000 + i as u16, 80, TcpFlags::SYN, i * 7919))
            .collect();
        let stats = WindowStats::compute(&records, 1.0);
        assert_eq!(stats.packet_count, 50.0);
        assert_eq!(stats.syn_without_ack, 50.0);
        assert_eq!(stats.top_dst_port_fraction, 1.0, "all SYNs hit port 80");
        assert!(stats.dst_port_entropy < 1e-9);
        assert_eq!(stats.short_lived_flows, 50.0);
        assert!(stats.seq_std > 1_000.0, "random sequence numbers spread");
    }

    #[test]
    fn udp_flood_window_signature() {
        let records: Vec<PacketRecord> =
            (0..64).map(|i| udp_record(4, 1000 + (i * 523 % 60000) as u16)).collect();
        let stats = WindowStats::compute(&records, 1.0);
        assert_eq!(stats.udp_fraction, 1.0);
        assert!(stats.dst_port_entropy > 5.0, "random ports → high entropy");
        assert!((stats.byte_rate - 64.0 * 540.0).abs() < 1e-6);
    }

    #[test]
    fn benign_window_signature() {
        // A handshake plus data exchange: SYN answered by ACKs.
        let mut records = vec![
            record(5, 5000, 80, TcpFlags::SYN, 1),
            record(5, 5000, 80, TcpFlags::ACK, 2),
        ];
        for i in 0..10 {
            records.push(record(5, 5000, 80, TcpFlags::ACK | TcpFlags::PSH, 2 + i));
        }
        let stats = WindowStats::compute(&records, 1.0);
        assert_eq!(stats.syn_without_ack, 0.0, "SYN followed by ACKs from same endpoint");
        assert_eq!(stats.repeated_syn_sources, 0.0);
        assert_eq!(stats.short_lived_flows, 0.0, "one long flow");
    }

    #[test]
    fn repeated_attempts_are_counted() {
        let records = vec![
            record(6, 7000, 80, TcpFlags::SYN, 1),
            record(6, 7000, 80, TcpFlags::SYN, 1),
            record(6, 7000, 80, TcpFlags::SYN, 1),
        ];
        let stats = WindowStats::compute(&records, 1.0);
        assert_eq!(stats.repeated_syn_sources, 1.0);
        assert_eq!(stats.syn_without_ack, 3.0);
    }

    #[test]
    fn rates_scale_with_window_length() {
        let records: Vec<PacketRecord> = (0..10).map(|i| udp_record(7, 1000 + i)).collect();
        let one = WindowStats::compute(&records, 1.0);
        let two = WindowStats::compute(&records, 2.0);
        assert!((one.byte_rate - 2.0 * two.byte_rate).abs() < 1e-9);
        assert!((one.flow_rate - 2.0 * two.flow_rate).abs() < 1e-9);
    }

    #[test]
    fn degenerate_window_span_falls_back_to_nominal_rates() {
        let records: Vec<PacketRecord> = (0..10).map(|i| udp_record(7, 1000 + i)).collect();
        let total_bytes = 10.0 * 540.0;
        // A zero span (all packets share one timestamp) must not blow
        // the rate up by the 1e-9 clamp's factor of a billion...
        let zero = WindowStats::compute(&records, 0.0);
        assert_eq!(zero.byte_rate, total_bytes);
        assert_eq!(zero.flow_rate, 10.0);
        // ...nor should infinite or NaN spans zero the rates out.
        for bad in [f64::INFINITY, f64::NAN, -1.0] {
            let stats = WindowStats::compute(&records, bad);
            assert_eq!(stats.byte_rate, total_bytes, "span {bad}");
            assert_eq!(stats.flow_rate, 10.0, "span {bad}");
        }
    }

    #[test]
    fn mean_std_is_population_form() {
        // Population deviation of {2, 4}: sqrt(((2-3)² + (4-3)²)/2) = 1,
        // where the sample (n-1) form would give sqrt(2).
        let (mean, std) = mean_std([2.0, 4.0].into_iter());
        assert_eq!(mean, 3.0);
        assert_eq!(std, 1.0);
        // A single observation is its own population: deviation 0.
        assert_eq!(mean_std([7.0].into_iter()), (7.0, 0.0));
    }

    #[test]
    fn boundary_ack_within_grace_is_not_a_missed_handshake() {
        // SYN at 0.95 s (window 0), the client's ACK at 1.02 s (window 1):
        // a perfectly normal handshake straddling the boundary.
        let syn = PacketRecord { ts: SimTime::from_millis(950), ..record(8, 9000, 80, TcpFlags::SYN, 1) };
        let ack =
            PacketRecord { ts: SimTime::from_millis(1_020), ..record(8, 9000, 80, TcpFlags::ACK, 2) };

        // Strict per-window accounting miscounts the SYN as unanswered.
        let strict = WindowStats::compute(&[syn], 1.0);
        assert_eq!(strict.syn_without_ack, 1.0);

        // With grace, window 0 defers the SYN...
        let (w0, carry) =
            WindowStats::compute_streaming(&[syn], 1.0, 1.0, 0.1, &AckGrace::default());
        assert_eq!(w0.syn_without_ack, 0.0);
        assert_eq!(carry.pending_syns(), 1);
        // ...and window 1's early ACK resolves it silently.
        let (w1, carry) = WindowStats::compute_streaming(&[ack], 1.0, 2.0, 0.1, &carry);
        assert_eq!(w1.syn_without_ack, 0.0);
        assert!(carry.is_empty());
    }

    #[test]
    fn deferred_syn_with_no_ack_lands_in_the_next_window() {
        let syn = PacketRecord { ts: SimTime::from_millis(980), ..record(8, 9100, 80, TcpFlags::SYN, 1) };
        // Unrelated traffic in window 1, never an ACK from the SYN's endpoint.
        let other = PacketRecord {
            ts: SimTime::from_millis(1_500),
            ..record(9, 1234, 80, TcpFlags::ACK | TcpFlags::PSH, 5)
        };
        let (w0, carry) =
            WindowStats::compute_streaming(&[syn], 1.0, 1.0, 0.1, &AckGrace::default());
        assert_eq!(w0.syn_without_ack, 0.0, "deferred, not dropped");
        let (w1, carry) = WindowStats::compute_streaming(&[other], 1.0, 2.0, 0.1, &carry);
        assert_eq!(w1.syn_without_ack, 1.0, "the run's total is preserved");
        assert!(carry.is_empty());
    }

    #[test]
    fn late_ack_beyond_grace_does_not_resolve() {
        let syn = PacketRecord { ts: SimTime::from_millis(950), ..record(8, 9200, 80, TcpFlags::SYN, 1) };
        // ACK 400 ms after the boundary: far beyond handshake latency.
        let ack =
            PacketRecord { ts: SimTime::from_millis(1_400), ..record(8, 9200, 80, TcpFlags::ACK, 2) };
        let (_, carry) =
            WindowStats::compute_streaming(&[syn], 1.0, 1.0, 0.1, &AckGrace::default());
        let (w1, _) = WindowStats::compute_streaming(&[ack], 1.0, 2.0, 0.1, &carry);
        assert_eq!(w1.syn_without_ack, 1.0);
    }

    #[test]
    fn zero_grace_reproduces_strict_accounting() {
        let records: Vec<PacketRecord> =
            (0..20).map(|i| record(3, 2000 + i as u16, 80, TcpFlags::SYN, i * 7)).collect();
        let strict = WindowStats::compute(&records, 1.0);
        let (streaming, carry) =
            WindowStats::compute_streaming(&records, 1.0, 1.0, 0.0, &AckGrace::default());
        assert_eq!(strict, streaming);
        assert!(carry.is_empty());
    }

    /// Deterministic pseudo-random record stream (xorshift, fixed seed)
    /// with mixed protocols, bare SYNs, ACKs and boundary-straddling
    /// handshakes — adversarial input for the accumulator/batch
    /// equivalence checks below.
    fn scrambled_records(n: usize, seed: u64) -> Vec<PacketRecord> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ts = 0u64;
        (0..n)
            .map(|_| {
                ts += next() % 120; // non-decreasing, frequently crosses 1 s boundaries
                let r = next();
                let proto = if r % 3 == 0 { Protocol::Udp } else { Protocol::Tcp };
                let flags = if proto == Protocol::Udp {
                    TcpFlags::EMPTY
                } else {
                    match r % 5 {
                        0 | 1 => TcpFlags::SYN,
                        2 => TcpFlags::ACK,
                        3 => TcpFlags::ACK | TcpFlags::PSH,
                        _ => TcpFlags::SYN | TcpFlags::ACK,
                    }
                };
                PacketRecord {
                    ts: SimTime::from_millis(ts),
                    src: Addr::new(10, 0, 0, (r % 7) as u8 + 1),
                    src_port: 1024 + (r % 13) as u16,
                    dst: Addr::new(10, 0, 0, 2),
                    dst_port: [80u16, 443, 53, 8080][(r % 4) as usize],
                    protocol: proto,
                    flags,
                    wire_len: 40 + (r % 1460) as u32,
                    payload_len: (r % 1460) as u32,
                    seq: (r >> 8) as u32,
                    label: Label::Benign,
                }
            })
            .collect()
    }

    /// The streaming accumulator must be bit-identical to the batch
    /// computation, window after window, including the handshake carry
    /// chain across boundaries.
    #[test]
    fn accumulator_matches_batch_computation() {
        let records = scrambled_records(4_000, 0x5eed);
        // Split into 1 s windows by timestamp.
        let mut windows: Vec<Vec<PacketRecord>> = Vec::new();
        let mut current_index = u64::MAX;
        for r in records {
            let index = r.ts.as_nanos() / 1_000_000_000;
            if index != current_index {
                windows.push(Vec::new());
                current_index = index;
            }
            windows.last_mut().unwrap().push(r);
        }
        assert!(windows.len() > 10, "stream must span many windows");

        let mut acc = WindowAccumulator::new();
        let mut batch_carry = AckGrace::default();
        let mut acc_carry = AckGrace::default();
        for (i, window) in windows.iter().enumerate() {
            let end = (i + 1) as f64;
            let (batch_stats, next_batch_carry) =
                WindowStats::compute_streaming(window, 1.0, end, 0.1, &batch_carry);
            for r in window {
                acc.push(r);
            }
            let (acc_stats, next_acc_carry) = acc.close(window, 1.0, end, 0.1, &acc_carry);
            assert_eq!(acc_stats, batch_stats, "window {i} stats diverged");
            assert_eq!(next_acc_carry, next_batch_carry, "window {i} carry diverged");
            batch_carry = next_batch_carry;
            acc_carry = next_acc_carry;
        }
    }

    /// The accumulator's cheap carry advance (cached-stats path) must
    /// match the records-based [`AckGrace::advance`].
    #[test]
    fn accumulator_advance_matches_ack_grace_advance() {
        let records = scrambled_records(1_500, 0xfeed);
        let mut acc = WindowAccumulator::new();
        for chunk in records.chunks(100) {
            let end = chunk.last().unwrap().ts.as_secs_f64() + 0.05;
            let reference = AckGrace::default().advance(chunk, end, 0.1);
            for r in chunk {
                acc.push(r);
            }
            let advanced = acc.advance_carry(end, 0.1);
            assert_eq!(advanced, reference);
        }
    }

    /// Persistent keys must never leak *values* across windows: an ACK
    /// timestamp recorded for an endpoint in one window sits in the map
    /// with a stale generation afterwards, and a bare SYN from the same
    /// endpoint in the next window must still count as unanswered.
    #[test]
    fn stale_generation_handshake_state_is_invisible() {
        let mut acc = WindowAccumulator::new();
        let ack = record(8, 9000, 80, TcpFlags::ACK, 2);
        acc.push(&ack);
        let (w0, carry) = acc.close(
            std::slice::from_ref(&ack), 1.0, 1.0, 0.1, &AckGrace::default());
        assert_eq!(w0.syn_without_ack, 0.0);

        // Same endpoint, next window, SYN never answered — and sent well
        // before the boundary so the grace deferral doesn't apply.
        let syn = record(8, 9000, 80, TcpFlags::SYN, 3);
        acc.push(&syn);
        let (w1, _) = acc.close(std::slice::from_ref(&syn), 1.0, 2.0, 0.1, &carry);
        assert_eq!(w1.syn_without_ack, 1.0, "stale first-ACK timestamp must not resolve a new SYN");
    }

    /// A huge key burst followed by many sparse windows crosses the
    /// stale-key compaction threshold; the culled accumulator must keep
    /// matching the batch computation exactly.
    #[test]
    fn accumulator_survives_stale_key_compaction() {
        let mut acc = WindowAccumulator::new();
        let mut carry = AckGrace::default();
        let mut batch_carry = AckGrace::default();
        for round in 0..40u32 {
            let window: Vec<PacketRecord> = if round == 0 {
                // ~2 000 distinct flows/endpoints in one window.
                (0..2000u32)
                    .map(|i| record((i % 200) as u8, 1024 + (i % 40000) as u16, 80, TcpFlags::SYN, i))
                    .collect()
            } else {
                (0..5u32).map(|i| record(1, 5000 + (round * 5 + i) as u16, 80, TcpFlags::SYN, i)).collect()
            };
            let end = (round + 1) as f64;
            for r in &window {
                acc.push(r);
            }
            let (acc_stats, acc_next) = acc.close(&window, 1.0, end, 0.1, &carry);
            let (batch_stats, batch_next) =
                WindowStats::compute_streaming(&window, 1.0, end, 0.1, &batch_carry);
            assert_eq!(acc_stats, batch_stats, "round {round}");
            assert_eq!(acc_next, batch_next, "round {round}");
            carry = acc_next;
            batch_carry = batch_next;
        }
    }

    /// Closing resets the accumulator completely: a second window sees
    /// no residue from the first.
    #[test]
    fn accumulator_close_resets_state() {
        let records = scrambled_records(600, 0xabcd);
        let (first, second) = records.split_at(300);

        let mut acc = WindowAccumulator::new();
        for r in first {
            acc.push(r);
        }
        let _ = acc.close(first, 1.0, f64::INFINITY, 0.0, &AckGrace::default());
        for r in second {
            acc.push(r);
        }
        let (reused, _) = acc.close(second, 1.0, f64::INFINITY, 0.0, &AckGrace::default());

        let fresh = WindowStats::compute(second, 1.0);
        assert_eq!(reused, fresh, "second window must not see the first's counts");
    }

    #[test]
    fn feature_names_align_with_vector() {
        assert_eq!(STAT_FEATURE_NAMES.len(), STAT_FEATURES);
        let stats = WindowStats { packet_count: 42.0, ..WindowStats::default() };
        assert_eq!(stats.as_features()[0], 42.0);
        assert_eq!(STAT_FEATURE_NAMES[0], "packet_count");
    }
}
