//! Property-based tests of the feature-extraction invariants.

use capture::dataset::Dataset;
use capture::record::{Label, PacketRecord};
use features::extract::{feature_vector, windows_of, WindowAggregator, TOTAL_FEATURES};
use features::scaling::{Scaler, ScalingMethod};
use features::window::{entropy, mean_std, WindowStats};
use netsim::packet::{Protocol, TcpFlags};
use netsim::time::SimTime;
use netsim::Addr;
use proptest::prelude::*;


prop_compose! {
    fn record_strategy()(
        ts_ms in 0u64..30_000,
        src_host in 1u8..20,
        src_port in 1024u16..65_535,
        dst_port in 1u16..65_535,
        proto in 0u8..2,
        wire_len in 40u32..1_500,
        seq in any::<u32>(),
        flag_bits in 0u8..32,
        malicious in any::<bool>(),
    ) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            src: Addr::new(10, 0, 0, src_host),
            src_port,
            dst: Addr::new(10, 0, 0, 2),
            dst_port,
            protocol: if proto == 0 { Protocol::Tcp } else { Protocol::Udp },
            flags: if proto == 0 { TcpFlags::from_bits(flag_bits) } else { TcpFlags::EMPTY },
            wire_len,
            payload_len: wire_len.saturating_sub(40),
            seq,
            label: if malicious { Label::Malicious } else { Label::Benign },
        }
    }
}

proptest! {
    /// Windows partition the packet stream: nothing lost, nothing
    /// duplicated, indices strictly increasing, and every packet is in
    /// the window its timestamp belongs to.
    #[test]
    fn windows_partition_stream(
        records in proptest::collection::vec(record_strategy(), 1..500),
        window_secs in 1u64..5,
    ) {
        let dataset = Dataset::from_records(records);
        let windows = windows_of(&dataset, window_secs);
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        prop_assert_eq!(total, dataset.len());
        for pair in windows.windows(2) {
            prop_assert!(pair[0].index < pair[1].index);
        }
        for w in &windows {
            for r in &w.records {
                prop_assert_eq!(r.window_index(window_secs), w.index);
            }
            prop_assert!(!w.records.is_empty(), "no empty windows are emitted");
        }
    }

    /// Entropy of a count distribution is within [0, log2(n)].
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(1u64..10_000, 1..64)) {
        let h = entropy(counts.iter().copied());
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9);
    }

    /// mean_std returns the exact mean and a non-negative finite std.
    #[test]
    fn mean_std_is_consistent(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let (mean, std) = mean_std(values.iter().copied());
        let expected: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((mean - expected).abs() < 1e-6 * expected.abs().max(1.0));
        prop_assert!(std >= 0.0);
        prop_assert!(std.is_finite());
    }

    /// Every feature vector has the declared arity and finite values,
    /// and the statistical tail is identical across a window.
    #[test]
    fn vectors_are_finite_and_shared(
        records in proptest::collection::vec(record_strategy(), 2..300),
    ) {
        let dataset = Dataset::from_records(records);
        for window in windows_of(&dataset, 1) {
            let matrix: Vec<Vec<f64>> =
                window.records.iter().map(|r| feature_vector(r, &window.stats)).collect();
            prop_assert_eq!(matrix.len(), window.records.len());
            let first_tail = &matrix[0][features::extract::BASIC_FEATURES..];
            for row in &matrix {
                prop_assert_eq!(row.len(), TOTAL_FEATURES);
                prop_assert!(row.iter().all(|v| v.is_finite()));
                prop_assert_eq!(&row[features::extract::BASIC_FEATURES..], first_tail);
            }
        }
    }

    /// Min-max scaling maps every training value into [0, 1] and is
    /// idempotent in arity.
    #[test]
    fn minmax_maps_training_data_to_unit_box(
        records in proptest::collection::vec(record_strategy(), 2..200),
    ) {
        let dataset = Dataset::from_records(records);
        let mut matrix: Vec<Vec<f64>> = windows_of(&dataset, 1)
            .iter()
            .flat_map(|w| w.records.iter().map(|r| feature_vector(r, &w.stats)).collect::<Vec<_>>())
            .collect();
        let scaler = Scaler::fit_transform(ScalingMethod::MinMax, &mut matrix);
        prop_assert_eq!(scaler.dims(), TOTAL_FEATURES);
        for row in &matrix {
            for &v in row {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "{v}");
            }
        }
    }

    /// The streaming aggregator and the batch splitter agree.
    #[test]
    fn streaming_equals_batch(
        records in proptest::collection::vec(record_strategy(), 1..300),
    ) {
        let dataset = Dataset::from_records(records);
        let batch = windows_of(&dataset, 1);
        let mut agg = WindowAggregator::new(1);
        let mut streaming = Vec::new();
        for &r in dataset.records() {
            if let Some(w) = agg.push(r) {
                streaming.push(w);
            }
        }
        if let Some(w) = agg.flush() {
            streaming.push(w);
        }
        prop_assert_eq!(batch.len(), streaming.len());
        for (a, b) in batch.iter().zip(&streaming) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(&a.records, &b.records);
            prop_assert_eq!(a.stats, b.stats);
        }
    }

    /// Stats-refresh reuse yields exactly the same *packets* per window,
    /// and recomputes stats on the refresh cadence.
    #[test]
    fn stats_refresh_reuses_cached_stats(
        records in proptest::collection::vec(record_strategy(), 50..400),
        refresh in 2usize..6,
    ) {
        let dataset = Dataset::from_records(records);
        let mut agg = WindowAggregator::new(1).with_stats_refresh(refresh);
        let mut windows = Vec::new();
        for &r in dataset.records() {
            if let Some(w) = agg.push(r) {
                windows.push(w);
            }
        }
        if let Some(w) = agg.flush() {
            windows.push(w);
        }
        let exact = windows_of(&dataset, 1);
        prop_assert_eq!(windows.len(), exact.len());
        for (i, (w, e)) in windows.iter().zip(&exact).enumerate() {
            prop_assert_eq!(&w.records, &e.records);
            if i % refresh == 0 {
                // Refresh windows carry freshly computed statistics.
                prop_assert_eq!(w.stats, e.stats);
            }
        }
    }

    /// feature_vector is deterministic in its inputs.
    #[test]
    fn feature_vector_is_pure(r in record_strategy()) {
        let stats = WindowStats::default();
        prop_assert_eq!(feature_vector(&r, &stats), feature_vector(&r, &stats));
    }
}
