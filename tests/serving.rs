//! Acceptance tests for the long-lived IDS serving layer: a chaos
//! scenario (CPU-pressure spike + link flap + loss/jitter/throttle
//! ramps) against a two-tenant service must complete with zero panics,
//! every dropped/shed/degraded window accounted (`ingested ==
//! classified + degraded + shed` per tenant), a mid-run hot-swap that
//! changes the generation in the `DetectionLog` without losing a
//! window, and byte-identical output across same-seed runs.

use ddoshield::experiments::{run_serving_detection, ExperimentScale};
use ddoshield::ServingOutcome;

fn run(seed: u64) -> ServingOutcome {
    run_serving_detection(seed, &ExperimentScale::swarm())
}

/// One run's full deterministic signature: per-tenant compact logs,
/// counters, robustness line and the telemetry export.
fn signature(outcome: &ServingOutcome) -> String {
    let mut out = String::new();
    for tenant in &outcome.report.tenants {
        out.push_str(&format!("== {} ==\n{:?}\n", tenant.name, tenant.counters));
        out.push_str(&tenant.log.serialize_compact());
    }
    out.push_str(&format!(
        "generation={} swaps={} retrains={} retrains_failed={}\n",
        outcome.report.generation,
        outcome.report.swaps,
        outcome.report.retrains,
        outcome.report.retrains_failed
    ));
    out.push_str(&outcome.report.robustness.to_string());
    out.push('\n');
    out.push_str(&outcome.report.telemetry.render_text());
    out
}

#[test]
fn serving_chaos_run_is_accounted_and_hot_swaps() {
    let outcome = run(42);
    let report = &outcome.report;

    // Probe output for tuning (visible with --nocapture).
    for t in &report.tenants {
        println!("{}: {:?} log_windows={}", t.name, t.counters, t.log.len());
    }
    println!(
        "generation={} swaps={} retrains={} retrains_failed={}",
        report.generation, report.swaps, report.retrains, report.retrains_failed
    );
    println!("robustness: {}", report.robustness);

    // Conservation: every window and record accounted, per tenant.
    assert_eq!(report.handle.conservation_violation(), None);
    assert_eq!(report.tenants.len(), 2);
    for tenant in &report.tenants {
        assert!(!tenant.log.is_empty(), "tenant {} logged no windows", tenant.name);
        assert_eq!(tenant.counters.conservation_violation(), None);
        // Generations in the log never regress.
        assert_eq!(tenant.log.generation_violation(), None);
        // Window indices stay live and strictly increasing.
        assert_eq!(tenant.log.liveness_violation(), None);
    }

    // The mid-run promotion landed: the champion's generation moved and
    // windows on both sides of the boundary are in the log.
    assert!(report.swaps >= 1, "no hot-swap happened");
    assert!(report.generation >= 1);
    let tserver = &report.tenants[0];
    let generations = tserver.log.generations();
    assert!(
        generations.len() >= 2,
        "expected windows under at least two generations, got {generations:?}"
    );

    // Backpressure actually engaged somewhere: the chaos plan's flood
    // phases must overflow the bounded queues.
    let total_shed: u64 = report
        .tenants
        .iter()
        .map(|t| t.counters.records_shed + t.counters.records_sampled_out)
        .sum();
    assert!(total_shed > 0, "chaos run never engaged a backpressure policy");
    let degraded: u64 = report.tenants.iter().map(|t| t.counters.windows_degraded).sum();
    assert!(degraded > 0, "CPU-pressure spike never degraded a window");
}

#[test]
fn serving_same_seed_runs_are_byte_identical() {
    let a = signature(&run(7));
    let b = signature(&run(7));
    assert_eq!(a, b, "same-seed serving runs diverged");
}
