//! Byte-identity guard for the zero-copy packet pipeline.
//!
//! The slab-backed packet pool, the sniffer double-buffer and the
//! persistent window accumulator are pure representation changes: they
//! must not alter a single byte of what the testbed produces. This test
//! pins three artifacts of a fixed-seed run against golden fixtures
//! captured from the pre-pool pipeline (`tests/golden/`):
//!
//! - the labelled dataset CSV export (as FNV-1a hash + byte length —
//!   the full export is several megabytes),
//! - the live run's full telemetry text export,
//! - the per-window alert stream (`DetectionLog::serialize_compact`).
//!
//! It also asserts plain same-seed reproducibility (two in-process runs
//! are byte-identical), independent of the fixtures.
//!
//! To regenerate the fixtures after an *intentional* behaviour change:
//! `UPDATE_IDENTITY_FIXTURES=1 cargo test --test identity`.

use capture::record::PacketRecord;
use ddoshield::experiments::{
    chaos_scenario, detection_scenario, training_scenario, ExperimentScale,
};
use ddoshield::Testbed;
use features::extract::{Window, WindowAggregator, DEFAULT_ACK_GRACE_SECS};
use features::window::{AckGrace, WindowStats};
use ids::pipeline::{IdsConfig, ModelKind, TrainedIds};
use ml::kmeans::KMeansConfig;
use netsim::time::SimDuration;
use netsim::SimRng;
use std::path::Path;

const SEED: u64 = 11;

fn scale() -> ExperimentScale {
    ExperimentScale { capture_secs: 40, live_secs: 30, max_train_samples: 2_000, cnn_epochs: 2 }
}

/// One full capture → train → live pass at a fixed seed, returning
/// (dataset CSV, telemetry text, alert stream).
fn produce_artifacts() -> (String, String, String) {
    let scale = scale();

    let mut testbed = Testbed::deploy(training_scenario(SEED, scale.capture_secs));
    testbed.run_infection_lead();
    let capture = testbed.run_capture(SimDuration::from_secs(scale.capture_secs));
    let mut csv = Vec::new();
    capture.write_csv(&mut csv).expect("write to Vec cannot fail");
    let dataset_csv = String::from_utf8(csv).expect("csv is ascii");

    let ids_config = IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(SEED ^ 0x7ea1);
    let outcome = TrainedIds::train(
        &capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        ids_config,
        &mut rng,
    )
    .expect("training capture contains both classes");

    let epoch_offset = scale.capture_secs + 5;
    let mut live = Testbed::deploy(detection_scenario(SEED, scale.live_secs, epoch_offset));
    live.run_infection_lead();
    let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
    let report = live.run_live(SimDuration::from_secs(scale.live_secs), outcome.ids);

    let telemetry = report.telemetry.render_text();
    let alerts = report.log.serialize_compact();
    (dataset_csv, telemetry, alerts)
}

/// FNV-1a over the artifact's bytes; any single-byte change flips it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn check_fixture(name: &str, produced: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_IDENTITY_FIXTURES").is_some() {
        std::fs::write(&path, produced).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e} (run with UPDATE_IDENTITY_FIXTURES=1)", path.display()));
    assert_eq!(
        produced, &golden,
        "{name} diverged from the pre-pool pipeline's bytes; if the change is intentional, \
         regenerate with UPDATE_IDENTITY_FIXTURES=1"
    );
}

#[test]
fn pipeline_outputs_are_byte_identical_to_golden_and_across_runs() {
    let (csv_a, telemetry_a, alerts_a) = produce_artifacts();

    // Same-seed reproducibility within this build.
    let (csv_b, telemetry_b, alerts_b) = produce_artifacts();
    assert_eq!(csv_a, csv_b, "dataset export differs across same-seed runs");
    assert_eq!(telemetry_a, telemetry_b, "telemetry differs across same-seed runs");
    assert_eq!(alerts_a, alerts_b, "alert stream differs across same-seed runs");

    // Identity with the committed pre-refactor artifacts. The pool
    // gauges (`netsim.pool.*`) did not exist before the zero-copy
    // refactor, so they are stripped before the golden comparison and
    // checked for presence separately.
    let dataset_digest = format!("fnv1a={:016x} bytes={}\n", fnv1a(csv_a.as_bytes()), csv_a.len());
    check_fixture("dataset.digest", &dataset_digest);
    let (telemetry_legacy, pool_lines) = split_pool_lines(&telemetry_a);
    assert!(
        pool_lines.iter().any(|l| l.contains("netsim.pool.high_water")),
        "pool gauges missing from telemetry"
    );
    check_fixture("telemetry.txt", &telemetry_legacy);
    check_fixture("alerts.txt", &alerts_a);
}

/// Streams `records` through the incremental (`FlowDelta`-backed)
/// [`WindowAggregator`] and, in lockstep, replays the same windowing
/// control flow on the batch oracle
/// ([`WindowStats::compute_streaming`] for fresh windows,
/// [`AckGrace::advance`] for `stats_refresh`-downgraded
/// handshake-only windows), panicking on the first bit mismatch.
/// Returns the incremental path's per-window statistical rows as
/// stable text (window index + the raw f64 bits of every feature).
fn extract_both_ways(records: &[PacketRecord], refresh: usize) -> String {
    use std::fmt::Write as _;
    let window_secs = 1u64;
    let grace = DEFAULT_ACK_GRACE_SECS;
    let mut agg = WindowAggregator::new(window_secs).with_stats_refresh(refresh);
    let mut incremental: Vec<(Window, bool)> = Vec::new();
    for &r in records {
        if let Some(w) = agg.push(r) {
            incremental.push((w, false));
        }
    }
    if let Some(w) = agg.flush() {
        incremental.push((w, true));
    }
    assert!(!incremental.is_empty(), "capture produced no windows");

    let mut out = String::new();
    let mut carry = AckGrace::default();
    let mut cached: Option<WindowStats> = None;
    for (emitted, (window, is_flush)) in incremental.iter().enumerate() {
        let nominal = window_secs as f64;
        let start = (window.index * window_secs) as f64;
        let (span, end) = if *is_flush {
            let last_ts = window.records.last().expect("non-empty window").ts.as_secs_f64();
            ((last_ts - start).clamp(1e-3, nominal), f64::INFINITY)
        } else {
            (nominal, start + nominal)
        };
        // The aggregator's refresh predicate: window number `emitted`
        // opened with `emitted` windows already closed.
        let full = cached.is_none() || emitted % refresh == 0;
        let stats = if full {
            let (stats, next) =
                WindowStats::compute_streaming(&window.records, span, end, grace, &carry);
            carry = next;
            cached = Some(stats);
            stats
        } else {
            carry = carry.advance(&window.records, end, grace);
            cached.expect("cache checked above")
        };
        assert_eq!(
            window.stats.as_features().map(f64::to_bits),
            stats.as_features().map(f64::to_bits),
            "window {} (refresh {refresh}): incremental stats diverged from the batch oracle",
            window.index
        );
        write!(out, "w={}", window.index).expect("writing to String cannot fail");
        for v in window.stats.as_features() {
            write!(out, " {:016x}", v.to_bits()).expect("writing to String cannot fail");
        }
        out.push('\n');
    }
    out
}

/// Byte-identity of the incremental feature extractor against the
/// batch oracle over the full chaos capture — every window, every
/// statistical feature, bit for bit — at `stats_refresh = 1` (every
/// window fresh, ACK-grace carry crossing every boundary) and
/// `stats_refresh = 3` (handshake-only downgraded windows whose carry
/// advances without stats). The per-window bits are also pinned as a
/// golden digest so a divergence in *both* paths at once cannot slip
/// through.
#[test]
fn incremental_extraction_matches_batch_oracle_on_chaos_capture() {
    let scale = scale();
    let epoch_offset = scale.capture_secs + 5;
    let mut testbed = Testbed::deploy(chaos_scenario(SEED, scale.live_secs, epoch_offset));
    testbed.run_infection_lead();
    let capture = testbed.run_capture(SimDuration::from_secs(epoch_offset + scale.live_secs));
    let records = capture.records();
    assert!(!records.is_empty(), "chaos capture produced no records");

    let mut digest = String::new();
    for refresh in [1usize, 3] {
        let rows = extract_both_ways(records, refresh);
        let windows = rows.lines().count();
        digest.push_str(&format!(
            "refresh={refresh} windows={windows} fnv1a={:016x}\n",
            fnv1a(rows.as_bytes())
        ));
    }
    check_fixture("features.digest", &digest);
}

/// Splits telemetry text into (everything except pool gauges, pool
/// gauge lines), preserving line order and the trailing newline shape.
fn split_pool_lines(telemetry: &str) -> (String, Vec<String>) {
    let mut rest = String::with_capacity(telemetry.len());
    let mut pool = Vec::new();
    for line in telemetry.lines() {
        if line.contains("netsim.pool.") {
            pool.push(line.to_string());
        } else {
            rest.push_str(line);
            rest.push('\n');
        }
    }
    (rest, pool)
}
