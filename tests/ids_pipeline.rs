//! Integration tests of the IDS pipeline against real testbed captures:
//! training, persistence (the PKL analogue), window ablation and the
//! live Real-Time IDS Unit running inside the IDS container.

use ddoshield::experiments::{
    run_window_ablation, training_scenario, ExperimentScale,
};
use ddoshield::Testbed;
use ids::pipeline::{IdsConfig, ModelKind, TrainedIds};
use ml::classifier::Classifier;
use ml::cnn::Cnn;
use ml::kmeans::{KMeansConfig, KMeansDetector};
use ml::rf::{ForestConfig, RandomForest};
use netsim::rng::SimRng;
use netsim::time::SimDuration;

fn small_capture(seed: u64) -> capture::Dataset {
    let mut testbed = Testbed::deploy(training_scenario(seed, 40));
    testbed.run_infection_lead();
    testbed.run_capture(SimDuration::from_secs(40))
}

/// Models persisted to bytes (the paper's PKL files) reload and keep
/// their predictions, end to end on real capture features.
#[test]
fn model_persistence_roundtrips_on_real_features() {
    let capture = small_capture(21);
    let config = IdsConfig { max_train_samples: 2_000, ..IdsConfig::default() };
    let (x, _) = features::extract::extract_dataset(&capture, 1);
    let sample: Vec<Vec<f64>> = x.into_iter().take(500).collect();

    // RF
    let mut rng = SimRng::seed_from(1);
    let outcome = TrainedIds::train(
        &capture,
        &ModelKind::RandomForest(ForestConfig { n_trees: 8, ..Default::default() }),
        config,
        &mut rng,
    )
    .expect("training works");
    let blob = outcome.ids.model().encode();
    let restored = RandomForest::decode(&blob).expect("decodes");
    let mut scaled = sample.clone();
    for row in &mut scaled {
        outcome.ids.scaler().transform_row(row);
    }
    for row in &scaled {
        assert_eq!(outcome.ids.model().predict(row), restored.predict(row));
    }

    // K-Means
    let mut rng = SimRng::seed_from(1);
    let outcome =
        TrainedIds::train(&capture, &ModelKind::KMeans(KMeansConfig::default()), config, &mut rng)
            .expect("training works");
    let restored = KMeansDetector::decode(&outcome.ids.model().encode()).expect("decodes");
    let mut scaled = sample.clone();
    for row in &mut scaled {
        outcome.ids.scaler().transform_row(row);
    }
    for row in &scaled {
        assert_eq!(outcome.ids.model().predict(row), restored.predict(row));
    }

    // CNN
    let mut rng = SimRng::seed_from(1);
    let outcome = TrainedIds::train(
        &capture,
        &ModelKind::Cnn(ml::cnn::CnnConfig { epochs: 2, ..Default::default() }),
        config,
        &mut rng,
    )
    .expect("training works");
    let restored = Cnn::decode(&outcome.ids.model().encode()).expect("decodes");
    let mut scaled = sample;
    for row in &mut scaled {
        outcome.ids.scaler().transform_row(row);
    }
    for row in &scaled {
        assert_eq!(outcome.ids.model().predict(row), restored.predict(row));
    }
}

/// E7's shape: recomputing statistical features less often costs less
/// CPU in the live IDS.
#[test]
fn window_ablation_reduces_cpu() {
    let scale = ExperimentScale {
        capture_secs: 40,
        live_secs: 40,
        max_train_samples: 2_000,
        cnn_epochs: 2,
    };
    let points = run_window_ablation(31, &scale, &[1, 10]);
    assert_eq!(points.len(), 2);
    let w1 = &points[0];
    let w10 = &points[1];
    assert!(w1.cpu_percent > 0.0, "CPU work is measured: {}", w1.cpu_percent);
    assert!(w10.cpu_percent > 0.0, "CPU work is measured: {}", w10.cpu_percent);
    // The cost claim is asserted on the deterministic fold-work counter,
    // not wall-clock CPU: the incremental extractor makes a window close
    // cost O(flows touched), so the refresh-period saving is exactly the
    // flows the downgraded windows never fold — measurable bit-for-bit,
    // while the wall-clock delta sits inside host noise.
    assert!(w1.flows_folded > 0, "per-second stats fold flows: {}", w1.flows_folded);
    assert!(
        w10.flows_folded < w1.flows_folded,
        "period-10 stats ({} flows folded) should cost less than per-second stats ({})",
        w10.flows_folded,
        w1.flows_folded
    );
    // Detection still works at both window lengths.
    assert!(w1.accuracy_percent > 70.0, "period-1 accuracy {}", w1.accuracy_percent);
    assert!(w10.accuracy_percent > 60.0, "period-10 accuracy {}", w10.accuracy_percent);
}

/// The live IDS unit (hosted app in the IDS container) logs one window
/// per second of virtual time.
#[test]
fn realtime_ids_logs_every_second() {
    let capture = small_capture(41);
    let config = IdsConfig { max_train_samples: 2_000, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(2);
    let outcome =
        TrainedIds::train(&capture, &ModelKind::KMeans(KMeansConfig::default()), config, &mut rng)
            .expect("training works");

    let mut live = Testbed::deploy(training_scenario(77, 30));
    live.run_infection_lead();
    let report = live.run_live(SimDuration::from_secs(30), outcome.ids);
    // One window per second, minus the first (still aggregating) and any
    // trailing partial window.
    assert!(
        (25..=31).contains(&report.log.len()),
        "expected ~30 windows, got {}",
        report.log.len()
    );
    assert!(report.sustainability.cpu_percent > 0.0);
    assert!(report.sustainability.model_size_kb > 0.0);
    // Every logged window actually contains packets.
    assert!(report.log.results().iter().all(|d| d.packets > 0));
}

/// Alerts over a real live run: the m-of-n policy fires on the
/// scheduled floods, measures time-to-detect, and raises no false
/// alarms during the quiet periods.
#[test]
fn alerts_fire_on_real_attacks() {
    use ids::alerts::{summarize, AlertPolicy};

    let capture = small_capture(61);
    let config = IdsConfig { max_train_samples: 3_000, ..IdsConfig::default() };
    let mut rng = SimRng::seed_from(3);
    let outcome = TrainedIds::train(
        &capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        config,
        &mut rng,
    )
    .expect("training works");

    // Same-distribution live run (same scenario family, later seed): the
    // alerts should catch the scheduled attacks promptly.
    let mut live = Testbed::deploy(training_scenario(61, 40));
    live.run_infection_lead();
    let report = live.run_live(SimDuration::from_secs(40), outcome.ids);
    let summary = summarize(&report.log.results(), &AlertPolicy::default());
    assert!(summary.attacks >= 1, "the schedule contains attacks: {summary:?}");
    assert_eq!(summary.detected, summary.attacks, "every attack alerted: {summary:?}");
    assert!(summary.mean_latency_windows <= 5.0, "prompt detection: {summary:?}");
    assert_eq!(summary.false_alarms, 0, "quiet periods stay quiet: {summary:?}");
}
