//! End-to-end integration tests: the full testbed pipeline, from
//! deployment through infection, capture, training and real-time
//! detection — including the paper's headline result shapes.

use ddoshield::experiments::{
    run_full_evaluation, run_training_capture, ExperimentScale,
};
use ddoshield::{ScenarioConfig, Testbed};
use netsim::time::SimDuration;

/// The complete evaluation reproduces the Table I shape: RF collapses on
/// the out-of-distribution live run while K-Means and CNN stay high, and
/// all three ace their train-time metrics (the §IV-D contrast).
#[test]
fn full_evaluation_reproduces_table1_shape() {
    let scale = ExperimentScale::quick();
    let report = run_full_evaluation(42, &scale);

    // E3: the training dataset is nearly balanced (paper: 57.3% malicious).
    let fraction = report.dataset.malicious_fraction();
    assert!((0.30..=0.70).contains(&fraction), "malicious fraction {fraction}");
    assert!(report.dataset.total() > 50_000, "substantial capture: {}", report.dataset.total());

    let by_name = |name: &str| {
        report.models.iter().find(|m| m.name == name).unwrap_or_else(|| panic!("{name} missing"))
    };
    let rf = by_name("RF");
    let km = by_name("K-Means");
    let cnn = by_name("CNN");

    // E5: all models have high train-time metrics.
    for m in [rf, km, cnn] {
        assert!(
            m.train_metrics.accuracy > 0.85,
            "{} train accuracy {}",
            m.name,
            m.train_metrics.accuracy
        );
        assert!(m.train_metrics.f1 > 0.85, "{} train f1 {}", m.name, m.train_metrics.f1);
    }

    // E1 / Table I shape: K-Means and CNN in the (high) nineties; the RF
    // markedly below both (paper: 61 vs ~95).
    assert!(km.accuracy_percent() > 88.0, "K-Means live {:.2}", km.accuracy_percent());
    assert!(cnn.accuracy_percent() > 85.0, "CNN live {:.2}", cnn.accuracy_percent());
    assert!(
        rf.accuracy_percent() < km.accuracy_percent() - 10.0,
        "RF {:.2} should trail K-Means {:.2} by >10 points",
        rf.accuracy_percent(),
        km.accuracy_percent()
    );
    assert!(
        rf.accuracy_percent() < cnn.accuracy_percent() - 8.0,
        "RF {:.2} should trail CNN {:.2} by >8 points",
        rf.accuracy_percent(),
        cnn.accuracy_percent()
    );

    // E4: accuracy dips at attack boundaries — the worst window is far
    // below the mean for every model (paper: 35% minimum for K-Means).
    for m in [km, cnn] {
        assert!(
            m.log.min_accuracy() < m.log.mean_accuracy() - 0.03,
            "{}: min {:.3} vs mean {:.3}",
            m.name,
            m.log.min_accuracy(),
            m.log.mean_accuracy()
        );
        let mixed = m.log.mean_accuracy_mixed().expect("attack boundaries exist");
        let pure = m.log.mean_accuracy_pure().expect("pure windows exist");
        assert!(mixed < pure, "{}: mixed {mixed} < pure {pure}", m.name);
    }

    // E2 / Table II shape: the K-Means model is the lightest by more
    // than an order of magnitude (paper: 11 Kb vs 712 / 736 Kb).
    assert!(
        rf.sustainability.model_size_kb > 10.0 * km.sustainability.model_size_kb,
        "RF {:.1} Kb vs K-Means {:.1} Kb",
        rf.sustainability.model_size_kb,
        km.sustainability.model_size_kb
    );
    assert!(
        cnn.sustainability.model_size_kb > 5.0 * km.sustainability.model_size_kb,
        "CNN {:.1} Kb vs K-Means {:.1} Kb",
        cnn.sustainability.model_size_kb,
        km.sustainability.model_size_kb
    );
    // Memory: every IDS holds model + window buffers; all are nonzero.
    for m in [rf, km, cnn] {
        assert!(m.sustainability.memory_kb > 1.0, "{} memory {}", m.name, m.sustainability.memory_kb);
    }
}

/// The whole pipeline is a pure function of the seed.
#[test]
fn captures_are_deterministic() {
    let scale = ExperimentScale { capture_secs: 25, ..ExperimentScale::quick() };
    let a = run_training_capture(7, &scale);
    let b = run_training_capture(7, &scale);
    assert_eq!(a.len(), b.len());
    assert_eq!(a.class_counts(), b.class_counts());
    assert_eq!(a.records()[..50], b.records()[..50]);

    let c = run_training_capture(8, &scale);
    assert_ne!(a.len(), c.len(), "different seeds diverge");
}

/// Infection reaches exactly the vulnerable fraction of the fleet.
#[test]
fn infection_reaches_vulnerable_devices() {
    let mut config = ScenarioConfig::paper_default(3);
    config.devices = 8;
    config.vulnerable_fraction = 0.5;
    config.infection_lead = SimDuration::from_secs(30);
    let mut testbed = Testbed::deploy(config);
    testbed.run_infection_lead();
    let snapshot = testbed.botnet_stats().snapshot();
    assert_eq!(snapshot.infections, 4, "ceil(8 * 0.5) crackable devices");
    assert_eq!(snapshot.connected_bots, 4);
    assert!(snapshot.login_attempts > snapshot.logins_ok);
}

/// The benign workload keeps flowing during the capture phase and all
/// three protocols are represented in the dataset.
#[test]
fn capture_contains_all_benign_protocols() {
    let mut testbed = Testbed::deploy(ScenarioConfig::paper_default(5));
    testbed.run_infection_lead();
    let dataset = testbed.run_capture(SimDuration::from_secs(30));

    let mut http = 0;
    let mut video = 0;
    let mut ftp_ctl = 0;
    for r in dataset.records() {
        match (r.dst_port, r.src_port) {
            (80, _) | (_, 80) => http += 1,
            (1935, _) | (_, 1935) => video += 1,
            (21, _) | (_, 21) => ftp_ctl += 1,
            _ => {}
        }
    }
    assert!(http > 100, "http packets {http}");
    assert!(video > 100, "video packets {video}");
    assert!(ftp_ctl > 20, "ftp control packets {ftp_ctl}");

    let clients = testbed.client_stats();
    assert!(clients.http.snapshot().completed > 0);
    assert!(clients.video.snapshot().completed > 0);
    assert!(clients.ftp.snapshot().completed > 0);
}

/// Stopping the attacker container kills the C2 and the botnet goes
/// quiet (the takedown example, as a test).
#[test]
fn c2_takedown_silences_the_botnet() {
    let mut testbed = Testbed::deploy(ScenarioConfig::paper_default(9));
    testbed.run_infection_lead();
    assert!(testbed.botnet_stats().snapshot().connected_bots > 0);

    let attacker = testbed.attacker();
    testbed.runtime_mut().stop(attacker);
    testbed.runtime_mut().run_for(SimDuration::from_secs(30));
    assert_eq!(testbed.botnet_stats().snapshot().connected_bots, 0);
}

/// The HTTP-flood extension (§IV-D's deferred application-level attack):
/// bots issue *real* GET requests over full TCP connections; the victim
/// web server serves them, and both directions carry malicious labels.
#[test]
fn http_flood_rides_real_connections() {
    use botnet::commands::AttackVector;
    use ddoshield::AttackPhase;

    let mut config = ScenarioConfig::paper_default(17);
    config.attacks = vec![AttackPhase {
        start: SimDuration::from_secs(5),
        vector: AttackVector::HttpFlood,
        duration_secs: 10,
        pps: 50, // requests per second per bot
    }];
    let mut testbed = Testbed::deploy(config);
    testbed.run_infection_lead();
    let served_before = testbed.server_stats().http.snapshot().served;
    let dataset = testbed.run_capture(SimDuration::from_secs(20));
    let served_after = testbed.server_stats().http.snapshot().served;

    // The web server actually served the flood's GET requests.
    let flood_requests = testbed.botnet_stats().snapshot().flood_packets;
    assert!(flood_requests > 2_000, "flood issued {flood_requests} requests");
    assert!(
        served_after - served_before > 2_000,
        "server served the flood: {} -> {}",
        served_before,
        served_after
    );

    // Both directions of the flood connections are labelled malicious,
    // and at the packet level they are ordinary HTTP on port 80.
    let counts = dataset.class_counts();
    assert!(counts.malicious > 10_000, "malicious packets {}", counts.malicious);
    let malicious_http = dataset
        .records()
        .iter()
        .filter(|r| r.label == capture::Label::Malicious)
        .filter(|r| r.dst_port == 80 || r.src_port == 80)
        .count();
    assert!(
        malicious_http as u64 > counts.malicious * 9 / 10,
        "an HTTP flood is (almost) entirely port-80 traffic"
    );
}

/// DDoSim's Wi-Fi network option: the same scenario runs end to end on
/// an 802.11-style bridge, and contention overhead measurably slows the
/// medium relative to wired CSMA.
#[test]
fn wifi_bridge_runs_the_full_scenario() {
    // paper_default schedules its first flood 20 s in; capture 40 s so
    // the run includes both quiet and attack periods.
    let mut wired = Testbed::deploy(ScenarioConfig::paper_default(23));
    wired.run_infection_lead();
    let wired_capture = wired.run_capture(SimDuration::from_secs(40));

    let mut wifi = Testbed::deploy(ScenarioConfig::paper_default_wifi(23));
    wifi.run_infection_lead();
    let wifi_capture = wifi.run_capture(SimDuration::from_secs(40));

    // Infection and attacks work over Wi-Fi too.
    assert!(wifi.botnet_stats().snapshot().infections >= 9);
    assert!(wifi.botnet_stats().snapshot().flood_packets > 1_000);
    let counts = wifi_capture.class_counts();
    assert!(counts.benign > 1_000, "benign over wifi: {}", counts.benign);
    assert!(counts.malicious > 1_000, "malicious over wifi: {}", counts.malicious);

    // The contended 54 Mbit/s medium moves fewer packets than the wired
    // 100 Mbit/s bus in the same virtual time.
    assert!(
        wifi_capture.len() < wired_capture.len(),
        "wifi {} < wired {}",
        wifi_capture.len(),
        wired_capture.len()
    );
}

/// Table I's ranking is a property of the mechanism, not of one lucky
/// seed: across different seeds the RF stays markedly below K-Means,
/// and K-Means stays high.
#[test]
fn table1_ranking_is_stable_across_seeds() {
    let scale = ExperimentScale::quick();
    for seed in [7u64, 1234] {
        let report = run_full_evaluation(seed, &scale);
        let by_name = |name: &str| {
            report.models.iter().find(|m| m.name == name).unwrap_or_else(|| panic!("{name}"))
        };
        let rf = by_name("RF").accuracy_percent();
        let km = by_name("K-Means").accuracy_percent();
        assert!(km > 85.0, "seed {seed}: K-Means {km:.1}");
        assert!(rf < km - 8.0, "seed {seed}: RF {rf:.1} vs K-Means {km:.1}");
    }
}
