//! Shard-count invariance and golden-fixture guard for the sharded
//! simulation path.
//!
//! The tentpole contract of `netsim::shard`: a sharded run's artifacts
//! are a pure function of the cell partition — the worker-shard count
//! is a wall-clock knob only. This test pins three things:
//!
//! - same-seed, same-shards runs are byte-identical (plain determinism),
//! - 1-shard, 2-shard and 8-shard runs of the same seed produce
//!   byte-identical detection logs and telemetry (the invariance the
//!   `shard-smoke` CI job also diffs end to end),
//! - the artifact matches a committed golden fixture
//!   (`tests/golden/shard_chaos.txt`), so the cross-shard merge order
//!   cannot silently drift between refactors.
//!
//! To regenerate after an *intentional* behaviour change:
//! `UPDATE_IDENTITY_FIXTURES=1 cargo test --test shard`.

use ddoshield::shardplan::{run_sharded_chaos, ShardPlanConfig};
use netsim::time::SimTime;
use netsim::BuggifyConfig;
use std::path::Path;

const SEED: u64 = 11;

fn run_at(shards: usize) -> (String, ddoshield::ShardedChaosReport) {
    let mut config = ShardPlanConfig::smoke(SEED);
    config.shards = shards;
    let report = run_sharded_chaos(&config);
    (report.output(), report)
}

fn check_fixture(name: &str, produced: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var_os("UPDATE_IDENTITY_FIXTURES").is_some() {
        std::fs::write(&path, produced).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {}: {e} (run with UPDATE_IDENTITY_FIXTURES=1)", path.display())
    });
    assert_eq!(
        produced, &golden,
        "{name} diverged; if the change is intentional, regenerate with \
         UPDATE_IDENTITY_FIXTURES=1"
    );
}

#[test]
fn sharded_artifacts_are_invariant_across_shard_counts_and_match_golden() {
    let (one, report) = run_at(1);

    // Plain same-seed determinism.
    let (again, _) = run_at(1);
    assert_eq!(one, again, "same-seed sharded runs differ");

    // Shard-count invariance: the worker count must not leak a byte.
    let (two, _) = run_at(2);
    let (eight, _) = run_at(8);
    assert_eq!(one, two, "1-shard and 2-shard artifacts differ");
    assert_eq!(one, eight, "1-shard and 8-shard artifacts differ");

    // Cross-shard accounting balances and every cell clock landed on
    // the configured end.
    let end = SimTime::ZERO + ShardPlanConfig::smoke(SEED).duration;
    assert_eq!(report.stats.conservation_violation(), None);
    assert_eq!(report.stats.clock_violation(end), None);
    assert!(report.stats.cross_sent > 0, "cross-cell traffic flowed");

    // Golden fixture: the merge order itself is pinned.
    check_fixture("shard_chaos.txt", &one);
}

#[test]
fn buggified_sharded_runs_stay_invariant_across_shard_counts() {
    let run = |shards: usize| {
        let mut config = ShardPlanConfig::smoke(SEED);
        config.shards = shards;
        config.buggify = BuggifyConfig::swarm(3);
        run_sharded_chaos(&config).output()
    };
    let one = run(1);
    assert_eq!(one, run(2), "buggified 1-shard and 2-shard artifacts differ");
    assert_eq!(one, run(8), "buggified 1-shard and 8-shard artifacts differ");
}
