//! Chaos integration tests: deterministic fault injection and the
//! overload-hardened IDS loop.
//!
//! The fault plan (bridge flap, loss ramp, jitter, throttle, IDS CPU
//! pressure) is compiled from the scenario config at deploy time and
//! driven entirely by the simulated clock and seeded RNG, so every run
//! of the same seed endures byte-identical chaos — and the IDS must
//! account for every window even while overloaded.

use ddoshield::experiments::{
    run_baseline_detection, run_chaos_detection, run_lifecycle_detection, ExperimentScale,
};

/// Two same-seed chaos runs produce byte-identical detection logs and
/// identical link counters — fault injection does not break the
/// simulator's determinism contract.
#[test]
fn chaos_runs_are_byte_identical() {
    let scale = ExperimentScale::quick();
    let a = run_chaos_detection(42, &scale);
    let b = run_chaos_detection(42, &scale);

    assert!(!a.live.log.is_empty(), "live run produced windows");
    assert_eq!(
        a.live.log.serialize_compact(),
        b.live.log.serialize_compact(),
        "detection logs must match byte for byte"
    );
    assert_eq!(a.bridge_stats, b.bridge_stats, "link counters must match");
    assert_eq!(a.live.robustness.feed_dropped, b.live.robustness.feed_dropped);
    assert_eq!(a.live.robustness.windows_degraded, b.live.robustness.windows_degraded);

    // The chaos actually happened: the flap destroyed in-flight frames
    // and the loss ramp drew extra channel losses.
    assert!(a.bridge_stats.drops_link_down > 0, "flap drops: {:?}", a.bridge_stats);
    assert!(a.bridge_stats.drops_lost > 0, "loss-ramp drops: {:?}", a.bridge_stats);
}

/// Under injected CPU pressure the IDS never loses a window: every
/// window is either classified normally or marked `degraded`, and the
/// robustness report's books balance against the log.
#[test]
fn overloaded_ids_accounts_for_every_window() {
    let scale = ExperimentScale::quick();
    let outcome = run_chaos_detection(7, &scale);
    let log = &outcome.live.log;
    let robustness = &outcome.live.robustness;

    assert_eq!(robustness.windows_total, log.len(), "every window is logged");
    assert_eq!(robustness.windows_degraded, log.degraded_count());
    assert!(
        robustness.windows_degraded > 0,
        "the CPU-pressure spike must push some windows over their interval"
    );
    assert!(
        robustness.windows_degraded < robustness.windows_total,
        "pressure is transient, so most windows classify in time"
    );
    // Degraded windows still carry a verdict — degradation is a flag,
    // not a dropped result.
    for w in log.results() {
        assert!(w.packets > 0, "window {} logged without packets", w.window_index);
        assert!(w.correct <= w.packets);
    }
}

/// §IV / E4 under chaos: windows straddling an attack boundary drag
/// accuracy below the steady-state windows — and the effect holds both
/// with and without fault injection on the very same traffic scenario.
#[test]
fn attack_boundary_dip_holds_with_and_without_faults() {
    let scale = ExperimentScale::quick();

    let clean = run_baseline_detection(21, &scale);
    let chaos = run_chaos_detection(21, &scale);

    for (name, outcome) in [("clean", &clean), ("chaos", &chaos)] {
        let log = &outcome.live.log;
        let mixed = log.mean_accuracy_mixed().unwrap_or_else(|| panic!("{name}: no mixed windows"));
        let pure = log.mean_accuracy_pure().unwrap_or_else(|| panic!("{name}: no pure windows"));
        assert!(
            mixed < pure,
            "{name}: boundary windows ({mixed:.3}) must trail steady-state ({pure:.3})"
        );
        assert!(pure > 0.85, "{name}: steady-state accuracy stays high ({pure:.3})");
        assert!(
            log.min_accuracy() < log.mean_accuracy(),
            "{name}: the worst window dips below the mean"
        );
    }

    // Only the chaos run flaps the bridge; the baseline keeps it up.
    assert_eq!(clean.bridge_stats.drops_link_down, 0);
    assert!(chaos.bridge_stats.drops_link_down > 0);
    // The baseline suffers no overload, so no window is degraded.
    assert_eq!(clean.live.robustness.windows_degraded, 0);
}

/// Two same-seed lifecycle chaos runs — a device reboot that wipes its
/// memory-resident bot, then a TServer reboot mid-run — are
/// byte-identical: the container state machine, C2 eviction sweep,
/// re-infection and client retry backoff all draw on the seeded clock
/// and RNG streams only.
#[test]
fn lifecycle_runs_are_byte_identical() {
    let scale = ExperimentScale::quick();
    let a = run_lifecycle_detection(42, &scale);
    let b = run_lifecycle_detection(42, &scale);

    assert!(!a.live.log.is_empty(), "live run produced windows");
    assert_eq!(
        a.live.log.serialize_compact(),
        b.live.log.serialize_compact(),
        "detection logs must match byte for byte"
    );
    assert_eq!(a.bridge_stats, b.bridge_stats, "link counters must match");
    assert_eq!(a.live.robustness, b.live.robustness, "robustness reports must match");
}

/// The lifecycle scenario actually exercises the recovery machinery:
/// both containers accrue exactly their configured downtime, the C2
/// evicts the rebooted device's bot and reinfects it after a positive
/// delay, and the benign workload degrades but survives the TServer
/// outage thanks to the retry budget.
#[test]
fn reboots_cause_eviction_reinfection_and_benign_recovery() {
    let scale = ExperimentScale::quick();
    let outcome = run_lifecycle_detection(42, &scale);
    let robustness = &outcome.live.robustness;

    // Downtime accounting: each reboot accrues its exact boot delay.
    let down: std::collections::HashMap<&str, u64> = robustness
        .container_downtime
        .iter()
        .map(|(name, ns)| (name.as_str(), *ns))
        .collect();
    assert_eq!(down.get("dev-0"), Some(&3_000_000_000), "device boot delay");
    assert_eq!(down.get("tserver"), Some(&4_000_000_000), "tserver boot delay");
    assert!(robustness.total_downtime_nanos() >= 7_000_000_000);

    // The rebooted device lost its memory-resident bot: the C2 evicted
    // it and the scanner re-compromised it some positive time later.
    assert!(robustness.bots_evicted >= 1, "eviction: {robustness}");
    assert!(robustness.reinfections >= 1, "reinfection: {robustness}");
    let latency = robustness
        .mean_reinfection_latency_nanos()
        .expect("reinfection implies a recorded latency");
    assert!(latency > 0, "time-to-reinfection must be positive, got {latency}ns");

    // Benign clients dipped (failures and retries happened during the
    // TServer outage) but the success rate recovered.
    assert!(robustness.benign_retried > 0, "outage triggered retries: {robustness}");
    assert!(robustness.benign_failed > 0, "outage exhausted some budgets: {robustness}");
    let rate = robustness.benign_success_rate().expect("clients ran");
    assert!(rate > 0.95, "benign success rate recovered, got {rate:.4}");
    assert!(
        robustness.benign_completed < robustness.benign_started,
        "the dip is visible: some transactions never completed"
    );
}

/// The fault schedule is a pure function of the scenario seed: two
/// deploys that differ in fleet size, client mix and the churn toggle —
/// knobs that consume different amounts of the deploy RNG before the
/// fault plan is compiled — still flap the bridge at byte-identical
/// times. (Regression: the fault stream used to be a conditional
/// `fork()` of the deploy stream, so any upstream draw reshuffled the
/// chaos; it now lives on the named `"deploy.faults"` stream.)
#[test]
fn fault_schedule_survives_unrelated_scenario_knobs() {
    use ddoshield::{rotation, FaultPlanConfig, RandomFlapSpec, ScenarioConfig, Testbed};
    use netsim::time::{SimDuration, SimTime};

    let mk = |devices: usize, clients: usize, churn: f64| {
        let mut config = ScenarioConfig::paper_default(1717);
        config.devices = devices;
        config.clients_per_device = clients;
        config.churn_rate_per_min = churn;
        config.infection_lead = SimDuration::from_secs(1);
        // Attacks start after the sampled window; only the flap plan
        // touches the bridge's administrative state before then.
        config.attacks = rotation(&[40], 5, 50);
        config.faults = FaultPlanConfig {
            random_flap: Some(RandomFlapSpec {
                start: SimDuration::from_secs(1),
                until: SimDuration::from_secs(22),
                mean_up_secs: 3.0,
                mean_down_secs: 1.0,
            }),
            ..FaultPlanConfig::default()
        };
        config
    };

    let sample = |mut tb: Testbed| -> Vec<bool> {
        let bridge = tb.runtime().bridge();
        (1..=500u64)
            .map(|step| {
                tb.runtime_mut().world_mut().run_until(SimTime::from_millis(step * 50));
                tb.runtime().world().link_is_up(bridge)
            })
            .collect()
    };

    let a = sample(Testbed::deploy(mk(4, 1, 0.0)));
    let b = sample(Testbed::deploy(mk(8, 2, 3.0)));
    assert_eq!(a, b, "random-flap schedule moved with unrelated deploy knobs");
    assert!(a.iter().any(|up| !up), "the flap plan actually fired");
}
