//! Determinism guarantees of the buggify perturbation layer.
//!
//! Buggify is only useful if a failing swarm seed replays exactly, and
//! only safe if the disabled layer is invisible. This test pins both
//! halves at full byte granularity (the swarm runner compares
//! fingerprints; here we diff the actual artifacts):
//!
//! - the same swarm seed produces byte-identical telemetry and alert
//!   streams across two in-process runs,
//! - different swarm seeds genuinely diverge,
//! - a *disabled* config carrying a nonzero swarm seed produces output
//!   byte-identical to the default config — the seed must be inert
//!   until `enabled` flips.
//!
//! The disabled-vs-golden-fixture half of the guarantee lives in
//! `tests/identity.rs`, which runs the golden scenarios with the
//! default (disabled) config against committed fixtures.

use ddoshield::experiments::{detection_scenario, ExperimentScale};
use ddoshield::Testbed;
use netsim::buggify::BuggifyConfig;
use netsim::time::SimDuration;

const SEED: u64 = 11;

fn scale() -> ExperimentScale {
    ExperimentScale::swarm()
}

/// One perturbed live run; returns (telemetry text, alert stream).
fn run_with(buggify: BuggifyConfig) -> (String, String) {
    let scale = scale();
    let epoch_offset = scale.capture_secs + 5;
    let ids = ddoshield::swarm::swarm_trained_ids(SEED, &scale);

    let mut scenario = detection_scenario(SEED, scale.live_secs, epoch_offset);
    scenario.buggify = buggify;
    let mut live = Testbed::deploy(scenario);
    live.run_infection_lead();
    let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
    let report = live.run_live(SimDuration::from_secs(scale.live_secs), ids);
    (report.telemetry.render_text(), report.log.serialize_compact())
}

#[test]
fn same_swarm_seed_is_byte_identical_and_seeds_diverge() {
    let (telemetry_a, alerts_a) = run_with(BuggifyConfig::swarm(7));
    let (telemetry_b, alerts_b) = run_with(BuggifyConfig::swarm(7));
    assert_eq!(telemetry_a, telemetry_b, "telemetry differs across same-swarm-seed runs");
    assert_eq!(alerts_a, alerts_b, "alert stream differs across same-swarm-seed runs");
    assert!(
        telemetry_a.contains("netsim.buggify."),
        "enabled buggify must export its decision-point counters"
    );

    let (telemetry_c, _) = run_with(BuggifyConfig::swarm(8));
    assert_ne!(
        telemetry_a, telemetry_c,
        "different swarm seeds must perturb the run differently"
    );
}

#[test]
fn disabled_config_with_seed_is_inert() {
    let inert = BuggifyConfig { enabled: false, swarm_seed: 0xdead_beef, intensity: 1.0 };
    let (telemetry_a, alerts_a) = run_with(inert);
    let (telemetry_b, alerts_b) = run_with(BuggifyConfig::default());
    assert_eq!(
        telemetry_a, telemetry_b,
        "a disabled buggify config must not leak its swarm seed into the run"
    );
    assert_eq!(alerts_a, alerts_b);
    assert!(
        !telemetry_a.contains("netsim.buggify."),
        "disabled buggify must not export decision-point counters"
    );
}
