//! Determinism contract of the observability layer: the RunTelemetry
//! export must be a pure function of the seed — byte-identical across
//! repeated runs and across thread budgets — and idle instruments must
//! render as zeros, never NaN.

use ddoshield::experiments::{run_baseline_detection, run_serving_detection, ExperimentScale};
use obs::RunTelemetry;

/// Small end-to-end profile: long enough that infection completes and
/// the live phase logs windows, short enough for a test.
fn tiny() -> ExperimentScale {
    ExperimentScale { capture_secs: 40, live_secs: 25, max_train_samples: 1_500, cnn_epochs: 2 }
}

fn run_telemetry(seed: u64) -> RunTelemetry {
    run_baseline_detection(seed, &tiny()).live.telemetry
}

#[test]
fn telemetry_is_byte_identical_across_same_seed_runs() {
    let a = run_telemetry(7);
    let b = run_telemetry(7);
    assert_eq!(a.render_text(), b.render_text());
    assert_eq!(a.render_json(), b.render_json());

    // The acceptance surface: event-loop phases, link counters, IDS
    // stage timings and the ML predict-work profile are all present.
    let deliver = a.histogram("netsim.phase.deliver.advance_ns").expect("phase histogram");
    assert!(deliver.count > 0);
    assert!(a.gauge("netsim.link.0.delivered_packets").expect("link gauge") > 0);
    assert!(a.counter("ids.windows").expect("ids windows") > 0);
    assert!(a.histogram("ids.extract_modelled_ns").expect("extract stage").count > 0);
    assert!(a.histogram("ids.classify_modelled_ns").expect("classify stage").count > 0);
    assert!(a.histogram("ids.predict_work_units").expect("predict profile").sum > 0);
    assert!(a.counter("botnet.infections").expect("botnet counter") > 0);
    assert!(a.counter("traffic.client.http.completed").expect("traffic counter") > 0);
    assert!(a.counter("containers.ids.cpu_windows").expect("meter counter") > 0);
}

#[test]
fn telemetry_is_thread_count_invariant() {
    let text_at = |threads: usize| {
        ml::par::with_threads(threads, || run_telemetry(11).render_text())
    };
    assert_eq!(text_at(1), text_at(4));
}

/// The serving layer's contract: a run with mid-flight model hot-swaps
/// and background retrains exports byte-identical telemetry for the
/// same seed, regardless of the ML thread budget — retrain scheduling
/// and swap points are sim-clock driven, never wall-clock or
/// thread-count driven.
#[test]
fn serving_hot_swap_telemetry_is_byte_identical_and_thread_invariant() {
    let render = || {
        let out = run_serving_detection(11, &ExperimentScale::swarm());
        assert!(out.report.swaps >= 1, "hot swap must land mid-run");
        assert!(out.report.generation >= 1, "generation must advance");
        out.report.telemetry.render_text()
    };
    let baseline = render();
    let serial = ml::par::with_threads(1, render);
    let threaded = ml::par::with_threads(4, render);
    assert_eq!(baseline, serial);
    assert_eq!(serial, threaded);
    assert!(baseline.contains("counter ids.serving.swaps"), "{baseline}");
    assert!(baseline.contains("gauge ids.serving.generation"), "{baseline}");
    assert!(baseline.contains("counter ids.serving.tserver.windows_ingested"), "{baseline}");
}

/// A fully-idle scope — instruments registered, nothing recorded — must
/// export zero-valued metrics, never NaN or missing entries.
#[test]
fn idle_instruments_export_zeros_not_nan() {
    let registry = obs::Registry::new();
    let scope = registry.scope("ids");
    let _windows = scope.counter("windows");
    let _depth = scope.gauge("queue_depth");
    let _lat = scope.histogram("extract_modelled_ns", &obs::pow2_bounds(10, 20));
    let telemetry = registry.snapshot();
    assert_eq!(telemetry.counter("ids.windows"), Some(0));
    assert_eq!(telemetry.gauge("ids.queue_depth"), Some(0));
    let hist = telemetry.histogram("ids.extract_modelled_ns").expect("registered");
    assert_eq!(hist.count, 0);
    assert_eq!(hist.sum, 0);
    let text = telemetry.render_text();
    assert!(text.contains("counter ids.windows 0"), "{text}");
    assert!(text.contains("hist ids.extract_modelled_ns count=0 sum=0"), "{text}");
    assert!(!text.contains("NaN"), "{text}");
    assert!(!telemetry.render_json().contains("NaN"));
}
