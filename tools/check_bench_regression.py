#!/usr/bin/env python3
"""Guard against hot-path benchmark regressions.

Compares freshly measured criterion-shim JSON files against one or more
committed references (BENCH_netsim.json, BENCH_ml.json) and fails if
any shared bench id got more than TOLERANCE slower. By default, new
benches (present only in the fresh run) and retired ones (present only
in a reference) are reported but never fail the check — the reference
is updated by committing a new BENCH file alongside the change that
moved it. With --require-baselines, a fresh bench id with no committed
baseline is an error: the smoke jobs use this so a renamed or
newly-added bench cannot silently run unguarded.

With --write-baselines, the check is replaced by a rewrite of the single
-r reference from the fresh measurements: each shared id gets the fresh
ns_per_iter/iterations, its previous number is rolled into
baseline_ns_per_iter (with the derived speedup), and fresh-only ids are
appended without a baseline. Ids missing from the fresh run keep their
committed entry untouched.

Usage:
  check_bench_regression.py -r REFERENCE [-r REFERENCE...] \
      [--require-baselines] FRESH [FRESH...]
  check_bench_regression.py --write-baselines -r REFERENCE FRESH [FRESH...]
"""

import argparse
import json
import sys

TOLERANCE = 0.20  # fail when fresh is >20% slower than the reference


def load(path):
    with open(path) as fh:
        return {entry["id"]: entry["ns_per_iter"] for entry in json.load(fh)}


def dump_entries(path, entries):
    """Writes entries in the committed one-object-per-line style."""
    with open(path, "w") as fh:
        fh.write("[\n")
        lines = [json.dumps(entry, separators=(", ", ": ")) for entry in entries]
        fh.write(",\n".join(f"  {line}" for line in lines))
        fh.write("\n]\n")


def write_baselines(reference_path, fresh_paths):
    with open(reference_path) as fh:
        entries = json.load(fh)
    fresh = {}
    for path in fresh_paths:
        with open(path) as fh:
            fresh.update({entry["id"]: entry for entry in json.load(fh)})

    known = set()
    for entry in entries:
        known.add(entry["id"])
        new = fresh.get(entry["id"])
        if new is None:
            print(f"KEEP {entry['id']}: not in fresh run")
            continue
        old_ns = entry["ns_per_iter"]
        entry["ns_per_iter"] = new["ns_per_iter"]
        entry["iterations"] = new["iterations"]
        entry["baseline_ns_per_iter"] = old_ns
        entry["speedup"] = round(old_ns / new["ns_per_iter"], 3)
        print(
            f"ROLL {entry['id']}: {old_ns:.0f} -> {new['ns_per_iter']:.0f} "
            f"ns/iter ({entry['speedup']:.2f}x)"
        )
    for bench_id in sorted(set(fresh) - known):
        new = fresh[bench_id]
        entries.append(
            {
                "id": bench_id,
                "ns_per_iter": new["ns_per_iter"],
                "iterations": new["iterations"],
            }
        )
        print(f"ADD  {bench_id}: {new['ns_per_iter']:.0f} ns/iter (no prior baseline)")

    dump_entries(reference_path, entries)
    print(f"wrote {reference_path}")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-r",
        "--reference",
        action="append",
        required=True,
        help="committed baseline JSON (repeatable)",
    )
    parser.add_argument(
        "--require-baselines",
        action="store_true",
        help="fail when a fresh bench id has no committed baseline",
    )
    parser.add_argument(
        "--write-baselines",
        action="store_true",
        help="rewrite the single -r reference from the fresh run instead of checking",
    )
    parser.add_argument("fresh", nargs="+", help="criterion-shim JSON from this run")
    args = parser.parse_args(argv[1:])

    if args.write_baselines:
        if len(args.reference) != 1:
            sys.exit("--write-baselines needs exactly one -r reference to rewrite")
        write_baselines(args.reference[0], args.fresh)
        return

    reference = {}
    for path in args.reference:
        reference.update(load(path))
    fresh = {}
    for path in args.fresh:
        fresh.update(load(path))

    failures = []
    for bench_id, ref_ns in sorted(reference.items()):
        if bench_id not in fresh:
            print(f"SKIP {bench_id}: not in fresh run")
            continue
        new_ns = fresh[bench_id]
        ratio = new_ns / ref_ns
        status = "FAIL" if ratio > 1.0 + TOLERANCE else "ok"
        print(f"{status:4} {bench_id}: {ref_ns:.0f} -> {new_ns:.0f} ns/iter ({ratio:.2f}x)")
        if status == "FAIL":
            failures.append(bench_id)

    unbaselined = sorted(set(fresh) - set(reference))
    for bench_id in unbaselined:
        print(f"NEW  {bench_id}: {fresh[bench_id]:.0f} ns/iter (no reference)")

    if failures:
        sys.exit(f"benchmark regression >{TOLERANCE:.0%} in: {', '.join(failures)}")
    if args.require_baselines and unbaselined:
        sys.exit(f"benches without a committed baseline: {', '.join(unbaselined)}")
    print("no regressions beyond tolerance")


if __name__ == "__main__":
    main(sys.argv)
