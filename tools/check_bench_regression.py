#!/usr/bin/env python3
"""Guard against netsim hot-path benchmark regressions.

Compares freshly measured criterion-shim JSON files against the
committed reference (BENCH_netsim.json) and fails if any shared bench
id got more than TOLERANCE slower. New benches (present only in the
fresh run) and retired ones (present only in the reference) are
reported but never fail the check — the reference is updated by
committing a new BENCH_netsim.json alongside the change that moved it.

Usage: check_bench_regression.py REFERENCE FRESH [FRESH...]
"""

import json
import sys

TOLERANCE = 0.20  # fail when fresh is >20% slower than the reference


def load(path):
    with open(path) as fh:
        return {entry["id"]: entry["ns_per_iter"] for entry in json.load(fh)}


def main(argv):
    if len(argv) < 3:
        sys.exit(f"usage: {argv[0]} REFERENCE FRESH [FRESH...]")
    reference = load(argv[1])
    fresh = {}
    for path in argv[2:]:
        fresh.update(load(path))

    failures = []
    for bench_id, ref_ns in sorted(reference.items()):
        if bench_id not in fresh:
            print(f"SKIP {bench_id}: not in fresh run")
            continue
        new_ns = fresh[bench_id]
        ratio = new_ns / ref_ns
        status = "FAIL" if ratio > 1.0 + TOLERANCE else "ok"
        print(f"{status:4} {bench_id}: {ref_ns:.0f} -> {new_ns:.0f} ns/iter ({ratio:.2f}x)")
        if status == "FAIL":
            failures.append(bench_id)
    for bench_id in sorted(set(fresh) - set(reference)):
        print(f"NEW  {bench_id}: {fresh[bench_id]:.0f} ns/iter (no reference)")

    if failures:
        sys.exit(f"benchmark regression >{TOLERANCE:.0%} in: {', '.join(failures)}")
    print("no regressions beyond tolerance")


if __name__ == "__main__":
    main(sys.argv)
