#!/usr/bin/env python3
"""Guard against hot-path benchmark regressions.

Compares freshly measured criterion-shim JSON files against one or more
committed references (BENCH_netsim.json, BENCH_ml.json) and fails if
any shared bench id got more than TOLERANCE slower. By default, new
benches (present only in the fresh run) and retired ones (present only
in a reference) are reported but never fail the check — the reference
is updated by committing a new BENCH file alongside the change that
moved it. With --require-baselines, a fresh bench id with no committed
baseline is an error: the smoke jobs use this so a renamed or
newly-added bench cannot silently run unguarded.

Usage:
  check_bench_regression.py -r REFERENCE [-r REFERENCE...] \
      [--require-baselines] FRESH [FRESH...]
"""

import argparse
import json
import sys

TOLERANCE = 0.20  # fail when fresh is >20% slower than the reference


def load(path):
    with open(path) as fh:
        return {entry["id"]: entry["ns_per_iter"] for entry in json.load(fh)}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-r",
        "--reference",
        action="append",
        required=True,
        help="committed baseline JSON (repeatable)",
    )
    parser.add_argument(
        "--require-baselines",
        action="store_true",
        help="fail when a fresh bench id has no committed baseline",
    )
    parser.add_argument("fresh", nargs="+", help="criterion-shim JSON from this run")
    args = parser.parse_args(argv[1:])

    reference = {}
    for path in args.reference:
        reference.update(load(path))
    fresh = {}
    for path in args.fresh:
        fresh.update(load(path))

    failures = []
    for bench_id, ref_ns in sorted(reference.items()):
        if bench_id not in fresh:
            print(f"SKIP {bench_id}: not in fresh run")
            continue
        new_ns = fresh[bench_id]
        ratio = new_ns / ref_ns
        status = "FAIL" if ratio > 1.0 + TOLERANCE else "ok"
        print(f"{status:4} {bench_id}: {ref_ns:.0f} -> {new_ns:.0f} ns/iter ({ratio:.2f}x)")
        if status == "FAIL":
            failures.append(bench_id)

    unbaselined = sorted(set(fresh) - set(reference))
    for bench_id in unbaselined:
        print(f"NEW  {bench_id}: {fresh[bench_id]:.0f} ns/iter (no reference)")

    if failures:
        sys.exit(f"benchmark regression >{TOLERANCE:.0%} in: {', '.join(failures)}")
    if args.require_baselines and unbaselined:
        sys.exit(f"benches without a committed baseline: {', '.join(unbaselined)}")
    print("no regressions beyond tolerance")


if __name__ == "__main__":
    main(sys.argv)
