//! The seed-swarm runner: N buggify seeds of each golden scenario,
//! machine-readable invariants checked after every run.
//!
//! ```text
//! cargo run --profile swarm -p swarm-runner --bin swarm -- \
//!     --case all --seed 42 --swarm-seed 0 --runs 64 [--threads 8] \
//!     [--determinism-every 16]
//! ```
//!
//! Exit code 0 means every run passed every invariant. On failure the
//! offending seeds print as copy-pasteable repro commands. Build with
//! `--profile swarm` so the kernel's `debug_assert!` invariants
//! (monotone clock, ChunkQueue accounting) are armed at release speed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ddoshield::experiments::ExperimentScale;
use ddoshield::swarm::{
    check_determinism, run_swarm_case, swarm_models, SwarmCase, SwarmModels, SwarmReport,
};

struct Args {
    cases: Vec<SwarmCase>,
    scenario_seed: u64,
    first_swarm_seed: u64,
    runs: u64,
    threads: usize,
    determinism_every: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut cases = SwarmCase::ALL.to_vec();
    let mut scenario_seed = 42u64;
    let mut first_swarm_seed = 0u64;
    let mut runs = 64u64;
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut determinism_every = 16u64;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--case" => {
                cases = if value == "all" {
                    SwarmCase::ALL.to_vec()
                } else {
                    vec![SwarmCase::parse(value).ok_or_else(|| {
                        format!("unknown case {value} (chaos|lifecycle|serving|sharded|all)")
                    })?]
                };
            }
            "--seed" => scenario_seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--swarm-seed" => {
                first_swarm_seed = value.parse().map_err(|e| format!("--swarm-seed: {e}"))?
            }
            "--runs" => runs = value.parse().map_err(|e| format!("--runs: {e}"))?,
            "--threads" => threads = value.parse().map_err(|e| format!("--threads: {e}"))?,
            "--determinism-every" => {
                determinism_every =
                    value.parse().map_err(|e| format!("--determinism-every: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(Args { cases, scenario_seed, first_swarm_seed, runs, threads: threads.max(1), determinism_every })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("swarm: {msg}");
            std::process::exit(2);
        }
    };
    let scale = ExperimentScale::swarm();

    // Training happens before the perturbed phase, so every swarm seed
    // replays the same models (champion + serving challenger): train
    // once, clone per run.
    eprintln!(
        "swarm: training IDS for scenario seed {} (cases: {})",
        args.scenario_seed,
        args.cases.iter().map(|c| c.name()).collect::<Vec<_>>().join(",")
    );
    let models = swarm_models(args.scenario_seed, &scale);

    let failures: Mutex<Vec<SwarmReport>> = Mutex::new(Vec::new());
    let done = AtomicU64::new(0);
    let next = AtomicU64::new(0);
    let total = args.runs * args.cases.len() as u64;

    std::thread::scope(|scope| {
        for _ in 0..args.threads {
            let models: SwarmModels = models.clone();
            let args = &args;
            let scale = &scale;
            let failures = &failures;
            let done = &done;
            let next = &next;
            scope.spawn(move || loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= total {
                    break;
                }
                let case = args.cases[(k % args.cases.len() as u64) as usize];
                let swarm_seed = args.first_swarm_seed + k / args.cases.len() as u64;
                let mut report =
                    run_swarm_case(case, args.scenario_seed, swarm_seed, scale, &models);
                // Double-run a deterministic sample of seeds.
                if args.determinism_every > 0 && swarm_seed % args.determinism_every == 0 {
                    if let Some(v) = check_determinism(
                        case,
                        args.scenario_seed,
                        swarm_seed,
                        scale,
                        &models,
                    ) {
                        report.violations.push(v);
                    }
                }
                if !report.passed() {
                    failures.lock().unwrap().push(report);
                }
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if n % 32 == 0 || n == total {
                    eprintln!("swarm: {n}/{total} runs complete");
                }
            });
        }
    });

    let mut failures = failures.into_inner().unwrap();
    failures.sort_by_key(|r| (r.case.name(), r.swarm_seed));
    if failures.is_empty() {
        println!("swarm: PASS ({total} runs, 0 violations)");
        return;
    }
    println!("swarm: FAIL ({} of {total} runs violated invariants)", failures.len());
    for report in &failures {
        for violation in &report.violations {
            println!(
                "  case={} swarm_seed={} invariant={} detail={}",
                report.case.name(),
                report.swarm_seed,
                violation.invariant,
                violation.detail
            );
        }
        println!("  repro: {}", report.repro_command());
    }
    std::process::exit(1);
}
