//! Telemetry run: the fault-free detection phase, printing only the
//! [`RunTelemetry`](obs::RunTelemetry) export — netsim event-loop phase
//! histograms, per-link counters, botnet life-cycle traces, per-protocol
//! traffic outcomes, IDS stage timings and the ML predict-work profile.
//!
//! Every line printed is a pure function of the seed: the CI
//! `telemetry-smoke` job runs this twice with the same seed and diffs
//! the output byte for byte. Keep wall-clock-dependent values out.
//!
//! Run with: `cargo run --release --example telemetry_run [seed] [--json]`

use ddoshield::experiments::{run_baseline_detection, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let seed: u64 =
        args.iter().find_map(|a| a.parse().ok()).unwrap_or(42);
    let scale = ExperimentScale::quick();
    let outcome = run_baseline_detection(seed, &scale);

    if json {
        println!("{}", outcome.live.telemetry.render_json());
    } else {
        println!("seed={seed}");
        print!("{}", outcome.live.telemetry.render_text());
    }
}
