//! Quickstart: deploy the DDoShield-IoT testbed, let Mirai infect the
//! device fleet, capture labelled traffic at the TServer, and print the
//! dataset composition.
//!
//! Run with: `cargo run --release --example quickstart`

use ddoshield::{ScenarioConfig, Testbed};
use netsim::time::SimDuration;

fn main() {
    // One root seed makes the whole run reproducible bit-for-bit.
    let mut testbed = Testbed::deploy(ScenarioConfig::paper_default(42));

    // The deployed containers (Fig. 1 of the paper).
    println!("{}", testbed.runtime().summary());

    // Phase 1: the Mirai scanner probes, cracks and infects the devices.
    testbed.run_infection_lead();
    let botnet = testbed.botnet_stats().snapshot();
    println!(
        "after infection lead: {} scan probes, {} logins ok, {} devices infected, {} bots online",
        botnet.scan_probes, botnet.logins_ok, botnet.infections, botnet.connected_bots
    );

    // Phase 2: benign traffic + scheduled DDoS floods, captured at the
    // TServer exactly as the paper's IDS sees it.
    let dataset = testbed.run_capture(SimDuration::from_secs(60));
    let counts = dataset.class_counts();
    println!(
        "captured {} packets in 60 virtual seconds: {} malicious / {} benign ({:.1}% malicious)",
        counts.total(),
        counts.malicious,
        counts.benign,
        100.0 * counts.malicious_fraction()
    );

    // The flood pressure is visible at the victim's SYN backlog.
    let (half_open, syn_drops) = testbed.tserver_backlog_pressure();
    println!("TServer HTTP backlog: {half_open} half-open connections, {syn_drops} SYNs dropped");

    let flood = testbed.botnet_stats().snapshot().flood_packets;
    println!("bots emitted {flood} flood packets in total");
}
