//! Lifecycle run: the real-time detection phase while containers crash
//! and reboot — a device reboot that wipes its memory-resident bot
//! (evicted by the C2, then re-scanned and reinfected) and a TServer
//! reboot that fails benign transactions until the retry budget pulls
//! them through.
//!
//! Every line printed is a pure function of the seed: the CI
//! `lifecycle-smoke` job runs this twice with the same seed and diffs
//! the output byte for byte. Keep wall-clock-dependent values
//! (measured CPU percent, timings) out of the output.
//!
//! Run with: `cargo run --release --example lifecycle_run [seed]`

use ddoshield::experiments::{run_lifecycle_detection, ExperimentScale};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale = ExperimentScale::quick();
    let outcome = run_lifecycle_detection(seed, &scale);

    println!("seed={seed}");
    println!("# per-window detection log");
    print!("{}", outcome.live.log.serialize_compact());
    println!("# bridge counters");
    println!("{:?}", outcome.bridge_stats);
    println!("# robustness");
    println!("{}", outcome.live.robustness);
    println!(
        "mean_accuracy={:.6} min_accuracy={:.6} degraded={}",
        outcome.live.log.mean_accuracy(),
        outcome.live.log.min_accuracy(),
        outcome.live.log.degraded_count()
    );
    println!("# telemetry");
    print!("{}", outcome.live.telemetry.render_text());
}
