//! Sharded run: the sharded chaos scenario (per-cell worlds advancing
//! under conservative cross-shard time-sync) reduced to a detection
//! log and telemetry section.
//!
//! Every line printed is a pure function of the seed and scale — the
//! shard count is *not* part of that function. The CI `shard-smoke`
//! job runs this at `--shards 1`, `2` and `8` with the same seed and
//! diffs the full output byte for byte.
//!
//! Run with: `cargo run --release --example shard_run [seed] [--shards N] [--buggify SWARM_SEED]`

use ddoshield::shardplan::{run_sharded_chaos, ShardPlanConfig};
use netsim::BuggifyConfig;

fn main() {
    let mut seed: u64 = 42;
    let mut shards: usize = 1;
    let mut buggify: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let value = args.next().expect("--shards takes a count");
                shards = value.parse().expect("--shards takes a count");
            }
            "--buggify" => {
                let value = args.next().expect("--buggify takes a swarm seed");
                buggify = Some(value.parse().expect("--buggify takes a swarm seed"));
            }
            other => seed = other.parse().expect("seed must be a u64"),
        }
    }

    let mut config = ShardPlanConfig::smoke(seed);
    config.shards = shards;
    if let Some(swarm_seed) = buggify {
        config.buggify = BuggifyConfig::swarm(swarm_seed);
    }
    let report = run_sharded_chaos(&config);

    println!("seed={seed}");
    println!("# per-window detection log");
    print!("{}", report.output());

    if let Some(detail) = report.stats.conservation_violation() {
        eprintln!("VIOLATION: {detail}");
        std::process::exit(1);
    }
    let end = netsim::time::SimTime::ZERO + config.duration;
    if let Some(detail) = report.stats.clock_violation(end) {
        eprintln!("VIOLATION: {detail}");
        std::process::exit(1);
    }
}
