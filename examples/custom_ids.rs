//! Bring-your-own-IDS: the paper releases DDoShield-IoT so researchers
//! can "test their own IDS implementations". This example plugs a
//! hand-written threshold detector into the Real-Time IDS Unit in place
//! of the three built-in models, using the same `Classifier` interface.
//!
//! Run with: `cargo run --release --example custom_ids`

use capture::sniffer::{sniffer_pair, SnifferFilter};
use ddoshield::{ScenarioConfig, Testbed};
use features::extract::{windows_of, BASIC_FEATURES, TOTAL_FEATURES};
use ml::matrix::FeatureMatrix;
use ids::pipeline::WindowDetection;
use ml::classifier::Classifier;
use netsim::time::SimDuration;

/// A transparent two-rule detector: a packet is malicious if its window
/// shows flood-scale flow churn or the window's packet volume is extreme.
///
/// (Feature indices: the statistical half of the vector starts at
/// `BASIC_FEATURES`; index 0 of the stats is `packet_count` and index 8
/// is `flow_rate` — see `features::window::STAT_FEATURE_NAMES`.)
#[derive(Clone)]
struct ThresholdIds {
    packet_count_cutoff: f64,
    flow_rate_cutoff: f64,
}

impl Classifier for ThresholdIds {
    fn name(&self) -> &'static str {
        "Threshold"
    }

    fn predict(&self, features: &[f64]) -> usize {
        let packet_count = features[BASIC_FEATURES];
        let flow_rate = features[BASIC_FEATURES + 8];
        usize::from(packet_count > self.packet_count_cutoff || flow_rate > self.flow_rate_cutoff)
    }

    fn encode(&self) -> Vec<u8> {
        let mut blob = Vec::new();
        blob.extend_from_slice(&self.packet_count_cutoff.to_le_bytes());
        blob.extend_from_slice(&self.flow_rate_cutoff.to_le_bytes());
        blob
    }

    fn memory_bytes(&self) -> u64 {
        16
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

fn main() {
    // Capture a labelled run to pick thresholds from.
    let mut testbed = Testbed::deploy(ScenarioConfig::paper_default(7));
    testbed.run_infection_lead();
    let dataset = testbed.run_capture(SimDuration::from_secs(60));
    println!("captured {} packets for threshold calibration", dataset.len());

    // Calibrate: place cutoffs above the benign windows' maxima.
    let windows = windows_of(&dataset, 1);
    let benign_max = |f: fn(&features::window::WindowStats) -> f64| {
        windows
            .iter()
            .filter(|w| w.majority_label() == capture::Label::Benign)
            .map(|w| f(&w.stats))
            .fold(0.0f64, f64::max)
    };
    let detector = ThresholdIds {
        packet_count_cutoff: benign_max(|s| s.packet_count) * 1.2,
        flow_rate_cutoff: benign_max(|s| s.flow_rate) * 1.2,
    };
    println!(
        "calibrated: packet_count > {:.0} or flow_rate > {:.0} ⇒ malicious",
        detector.packet_count_cutoff, detector.flow_rate_cutoff
    );

    // Evaluate on a *fresh* run, window by window, without any scaling
    // (raw thresholds want raw features).
    let mut live = Testbed::deploy(ScenarioConfig::paper_default(8));
    let (tap, handle) = sniffer_pair(SnifferFilter::Involving(live.tserver_addr()));
    live.runtime_mut().world_mut().add_tap(Box::new(tap));
    live.run_infection_lead();
    let _ = handle.drain();
    live.runtime_mut().run_for(SimDuration::from_secs(60));
    let live_dataset = capture::Dataset::from_records(handle.drain());

    let mut correct = 0usize;
    let mut total = 0usize;
    let mut worst: Option<WindowDetection> = None;
    // One flat scratch matrix reused across windows: cleared, not
    // reallocated, per window.
    let mut rows = FeatureMatrix::with_capacity(0, TOTAL_FEATURES);
    for window in windows_of(&live_dataset, 1) {
        let truth = window.labels();
        rows.clear();
        window.append_features(&mut rows);
        let predictions: Vec<usize> = rows.rows().map(|row| detector.predict(row)).collect();
        let window_correct = predictions.iter().zip(&truth).filter(|(p, t)| p == t).count();
        correct += window_correct;
        total += truth.len();
        let det = WindowDetection {
            window_index: window.index,
            packets: truth.len(),
            correct: window_correct,
            predicted_malicious: predictions.iter().filter(|&&p| p == 1).count(),
            truth_malicious: truth.iter().filter(|&&t| t == 1).count(),
            malicious_correct: predictions
                .iter()
                .zip(&truth)
                .filter(|(&p, &t)| p == 1 && t == 1)
                .count(),
            mixed: window.is_mixed(),
            majority_truth: window.majority_label(),
            generation: 0,
            degraded: false,
        };
        if worst.as_ref().is_none_or(|w| det.accuracy() < w.accuracy()) {
            worst = Some(det);
        }
    }
    println!(
        "custom IDS live accuracy: {:.2}% over {} packets (model size {} bytes)",
        100.0 * correct as f64 / total as f64,
        total,
        detector.encode().len()
    );
    if let Some(w) = worst {
        println!(
            "worst window: #{} accuracy {:.1}% ({} packets, mixed={})",
            w.window_index,
            w.accuracy() * 100.0,
            w.packets,
            w.mixed
        );
    }
}
