//! Alert console: what an operator sees. Trains the K-Means IDS, runs a
//! live deployment, and prints alert episodes with per-attack
//! time-to-detect — plus the first tcpdump-style trace lines of the
//! first alert window.
//!
//! Run with: `cargo run --release --example alert_console`

use capture::sniffer::SnifferFilter;
use capture::trace::trace_pair;
use ddoshield::experiments::{detection_scenario, training_scenario, ExperimentScale};
use ddoshield::Testbed;
use ids::alerts::{alert_episodes, detection_latencies, summarize, AlertPolicy};
use ids::pipeline::{IdsConfig, ModelKind, TrainedIds};
use ml::kmeans::KMeansConfig;
use netsim::rng::SimRng;
use netsim::time::SimDuration;

fn main() {
    let scale = ExperimentScale::quick();

    // Train on one run.
    println!("capturing {} virtual seconds of training traffic...", scale.capture_secs);
    let mut trainer = Testbed::deploy(training_scenario(42, scale.capture_secs));
    trainer.run_infection_lead();
    let capture = trainer.run_capture(SimDuration::from_secs(scale.capture_secs));
    let mut rng = SimRng::seed_from(7);
    let outcome = TrainedIds::train(
        &capture,
        &ModelKind::KMeans(KMeansConfig { k_max: 24, ..KMeansConfig::default() }),
        IdsConfig { max_train_samples: scale.max_train_samples, ..IdsConfig::default() },
        &mut rng,
    )
    .expect("capture contains both classes");
    println!("trained K-Means IDS (holdout acc {:.2}%)\n", outcome.holdout_metrics.accuracy * 100.0);

    // Deploy live with a packet trace on the victim.
    let epoch_offset = scale.capture_secs + 5;
    let mut live = Testbed::deploy(detection_scenario(42, scale.live_secs, epoch_offset));
    let (trace_tap, trace) = trace_pair(SnifferFilter::Involving(live.tserver_addr()), Some(12));
    live.runtime_mut().world_mut().add_tap(Box::new(trace_tap));
    live.run_infection_lead();
    let _ = live.run_capture(SimDuration::from_secs(epoch_offset));
    let report = live.run_live(SimDuration::from_secs(scale.live_secs), outcome.ids);

    // The operator's view: alert episodes and time-to-detect.
    let policy = AlertPolicy::default();
    let results = report.log.results();
    let episodes = alert_episodes(&results, &policy);
    println!("alert episodes ({} total):", episodes.len());
    for e in &episodes {
        match e.cleared_at {
            Some(end) => println!("  ALERT window {} .. {} (cleared)", e.fired_at, end),
            None => println!("  ALERT window {} .. (still firing)", e.fired_at),
        }
    }
    println!();
    for latency in detection_latencies(&results, &episodes, &policy) {
        match latency.windows_to_detect {
            Some(w) => println!(
                "attack [{}..{}] detected after {w} window(s)",
                latency.attack_start, latency.attack_end
            ),
            None => println!(
                "attack [{}..{}] MISSED",
                latency.attack_start, latency.attack_end
            ),
        }
    }
    let summary = summarize(&results, &policy);
    println!(
        "\nsummary: {}/{} attacks detected, mean latency {:.1} windows, {} false alarms",
        summary.detected, summary.attacks, summary.mean_latency_windows, summary.false_alarms
    );

    println!("\nfirst packets on the victim's wire (tcpdump-style):");
    for line in trace.lines() {
        println!("  {line}");
    }
}
