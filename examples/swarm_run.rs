//! Single-seed swarm repro: replays one golden scenario under one
//! buggify swarm seed and prints the invariant verdicts. This is the
//! command `SwarmReport::repro_command` emits — a failing swarm seed
//! pasted here replays bit-identically.
//!
//! Run with:
//! `cargo run --profile swarm --example swarm_run -- --case chaos --seed 42 --swarm-seed 7`

use ddoshield::experiments::ExperimentScale;
use ddoshield::swarm::{run_swarm_case, swarm_models, SwarmCase};

fn main() {
    let mut case = SwarmCase::Chaos;
    let mut scenario_seed = 42u64;
    let mut swarm_seed = 0u64;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).map(String::as_str).unwrap_or_default();
        match flag {
            "--case" => case = SwarmCase::parse(value).expect("case: chaos|lifecycle|serving|sharded"),
            "--seed" => scenario_seed = value.parse().expect("--seed takes a u64"),
            "--swarm-seed" => swarm_seed = value.parse().expect("--swarm-seed takes a u64"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }

    let scale = ExperimentScale::swarm();
    let models = swarm_models(scenario_seed, &scale);
    let report = run_swarm_case(case, scenario_seed, swarm_seed, &scale, &models);

    println!(
        "case={} seed={} swarm_seed={} windows={} degraded={} fires={} fingerprint={:#018x}",
        report.case.name(),
        report.scenario_seed,
        report.swarm_seed,
        report.windows,
        report.degraded,
        report.buggify_fires,
        report.fingerprint
    );
    if report.passed() {
        println!("verdict=PASS");
    } else {
        for v in &report.violations {
            println!("violation invariant={} detail={}", v.invariant, v.detail);
        }
        println!("verdict=FAIL");
        std::process::exit(1);
    }
}
