//! Chaos run: the real-time detection phase under an injected fault
//! plan — a bridge outage, a transient loss ramp, latency jitter, a
//! bandwidth throttle, and a CPU-pressure spike on the IDS node.
//!
//! Every line printed is a pure function of the seed: the CI
//! `chaos-smoke` job runs this twice with the same seed and diffs the
//! output byte for byte. Keep wall-clock-dependent values (measured
//! CPU percent, timings) out of the output.
//!
//! Run with: `cargo run --release --example chaos_run [seed]`

use ddoshield::experiments::{run_chaos_detection, ExperimentScale};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale = ExperimentScale::quick();
    let outcome = run_chaos_detection(seed, &scale);

    println!("seed={seed}");
    println!("# per-window detection log");
    print!("{}", outcome.live.log.serialize_compact());
    println!("# bridge counters");
    println!("{:?}", outcome.bridge_stats);
    println!("# robustness");
    println!("{}", outcome.live.robustness);
    println!(
        "mean_accuracy={:.6} min_accuracy={:.6} degraded={}",
        outcome.live.log.mean_accuracy(),
        outcome.live.log.min_accuracy(),
        outcome.live.log.degraded_count()
    );
    println!("# telemetry");
    print!("{}", outcome.live.telemetry.render_text());
}
