//! Dataset export: generate a labelled IoT traffic capture and write it
//! to CSV — the testbed as a dataset factory for external IDS research
//! (the paper positions captured traffic as training data "addressing
//! the lack of high-quality datasets required to build IoT IDSs").
//!
//! Run with: `cargo run --release --example dataset_export [out.csv]`

use std::fs::File;
use std::io::{BufReader, BufWriter};

use capture::Dataset;
use ddoshield::{ScenarioConfig, Testbed};
use netsim::time::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).unwrap_or_else(|| "ddoshield_capture.csv".to_owned());

    let mut testbed = Testbed::deploy(ScenarioConfig::paper_default(2024));
    testbed.run_infection_lead();
    let dataset = testbed.run_capture(SimDuration::from_secs(45));
    let counts = dataset.class_counts();
    println!(
        "captured {} packets ({} malicious / {} benign)",
        counts.total(),
        counts.malicious,
        counts.benign
    );

    let file = File::create(&path)?;
    dataset.write_csv(BufWriter::new(file))?;
    println!("wrote {path}");

    // Round-trip check: the CSV re-imports to an identical dataset.
    let back = Dataset::read_csv(BufReader::new(File::open(&path)?))?;
    assert_eq!(back.len(), dataset.len());
    assert_eq!(back.class_counts(), counts);
    println!("re-imported {} records: OK", back.len());

    // A train/test split ready for model development.
    let (train, test) = back.split_by_time(0.7);
    println!(
        "chronological 70/30 split: train {} packets, test {} packets",
        train.len(),
        test.len()
    );

    // And a pcap for Wireshark (the paper's external analysis workflow).
    let pcap_path = path.replace(".csv", ".pcap");
    let pcap_file = File::create(&pcap_path)?;
    capture::write_pcap(BufWriter::new(pcap_file), dataset.records())?;
    println!("wrote {pcap_path} (open it in Wireshark)");
    Ok(())
}
