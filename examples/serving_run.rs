//! Serving run: the long-lived IDS serving layer under chaos — two
//! tenants with different backpressure policies, a mid-run
//! champion/challenger promotion, and periodic background retrains
//! that hot-swap the model at window boundaries.
//!
//! Every line printed is a pure function of the seed: the CI
//! `serving-smoke` job runs this twice with the same seed and diffs
//! the output byte for byte. Keep wall-clock-dependent values
//! (measured CPU percent, timings) out of the output.
//!
//! Run with: `cargo run --release --example serving_run [seed]`

use ddoshield::experiments::{run_serving_detection, ExperimentScale};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let scale = ExperimentScale::quick();
    let outcome = run_serving_detection(seed, &scale);
    let report = &outcome.report;

    println!("seed={seed}");
    println!(
        "generation={} swaps={} retrains={} retrains_failed={}",
        report.generation, report.swaps, report.retrains, report.retrains_failed
    );
    for tenant in &report.tenants {
        let c = &tenant.counters;
        println!("# tenant {}", tenant.name);
        println!(
            "windows ingested={} classified={} degraded={} shed={}",
            c.windows_ingested, c.windows_classified, c.windows_degraded, c.windows_shed
        );
        println!(
            "records offered={} processed={} shed={} sampled_out={}",
            c.records_offered, c.records_processed, c.records_shed, c.records_sampled_out
        );
        println!(
            "shadow challenger_windows={} verdict_disagreements={}",
            c.challenger_windows, c.verdict_disagreements
        );
        print!("{}", tenant.log.serialize_compact());
    }
    println!("# bridge counters");
    println!("{:?}", outcome.bridge_stats);
    println!("# robustness");
    println!("{}", report.robustness);
    println!("# telemetry");
    print!("{}", report.telemetry.render_text());
}
