//! Botnet takedown: the testbed as a what-if laboratory. Watch the
//! Mirai life-cycle unfold under device churn, then stop the attacker
//! container mid-campaign (a C2 takedown) and observe the botnet decay.
//!
//! Run with: `cargo run --release --example botnet_takedown`

use ddoshield::{rotation, ScenarioConfig, Testbed};
use netsim::time::SimDuration;

fn main() {
    let mut config = ScenarioConfig::paper_default(99);
    config.churn_rate_per_min = 2.0; // devices drop off and rejoin
    config.churn_mean_down = SimDuration::from_secs(8);
    config.attacks = rotation(&[10, 40, 70, 100], 15, 300);

    let mut testbed = Testbed::deploy(config);
    println!("t(s)  infected  bots-online  flood-packets  syn-drops");

    let mut takedown_done = false;
    for step in 1..=16 {
        testbed.runtime_mut().run_for(SimDuration::from_secs(10));
        let snapshot = testbed.botnet_stats().snapshot();
        let (_, syn_drops) = testbed.tserver_backlog_pressure();
        println!(
            "{:<5} {:<9} {:<12} {:<14} {:<9}",
            step * 10,
            snapshot.infections,
            snapshot.connected_bots,
            snapshot.flood_packets,
            syn_drops
        );

        // At t = 90 s: the C2 is seized. Bots lose their controller; no
        // further attack orders can be issued.
        if step == 9 && !takedown_done {
            let attacker = testbed.attacker();
            testbed.runtime_mut().stop(attacker);
            takedown_done = true;
            println!("--- attacker container stopped (C2 takedown) ---");
        }
    }

    let final_snapshot = testbed.botnet_stats().snapshot();
    println!();
    println!(
        "campaign totals: {} probes, {} infections, {} attack orders, {} flood packets",
        final_snapshot.scan_probes,
        final_snapshot.infections,
        final_snapshot.attacks_started,
        final_snapshot.flood_packets
    );
    assert!(takedown_done);
    println!(
        "bots online after takedown: {} (C2 connections died with the container)",
        final_snapshot.connected_bots
    );
}
