//! IDS comparison: train all three of the paper's models on one capture
//! and pit them against the same live detection run — a miniature
//! Table I + Table II in one program.
//!
//! Run with: `cargo run --release --example ids_comparison`

use ddoshield::experiments::{run_full_evaluation, ExperimentScale};

fn main() {
    let scale = ExperimentScale::quick();
    println!(
        "training for {} virtual seconds, live detection for {} virtual seconds...\n",
        scale.capture_secs, scale.live_secs
    );

    let report = run_full_evaluation(42, &scale);

    println!(
        "training capture: {} packets ({:.1}% malicious)\n",
        report.dataset.total(),
        100.0 * report.dataset.malicious_fraction()
    );

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "model", "train acc", "live acc", "min window", "memory (Kb)", "model size (Kb)"
    );
    for m in &report.models {
        println!(
            "{:<8} {:>9.2}% {:>9.2}% {:>11.1}% {:>12.2} {:>14.2}",
            m.name,
            m.train_metrics.accuracy * 100.0,
            m.accuracy_percent(),
            m.log.min_accuracy() * 100.0,
            m.sustainability.memory_kb,
            m.sustainability.model_size_kb,
        );
    }

    println!();
    println!("paper (Table I): RF 61.22%  K-Means 94.82%  CNN 95.47%");
    println!("the shape to look for: RF far below K-Means and CNN in real time,");
    println!("despite near-perfect train-time metrics, and the K-Means model");
    println!("smaller than the others by more than an order of magnitude.");
}
