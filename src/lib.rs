pub use ddoshield;
